(* The streaming, disk-backed corpus pipeline (ROADMAP: "paper-scale
   corpora").

   Synthesis seeds stay in memory — deeper depths sample the shallower
   tables recursively, so the seed corpus is inherently resident. The scale
   axis is parameter expansion: every seed example yields [multiplier]
   copies with fresh gazette values (1-30x per example, further scaled by
   [expand_scale]), and those copies never feed back into sampling. This
   module makes that phase streaming: expansion shards write their copies
   straight into sorted spill runs (Dataset.Spill), and the coordinator's
   deterministic merge becomes an external k-way merge over the run files —
   peak memory is bounded by (chunk size x multiplier + one record per run),
   independent of total corpus size.

   Byte-identity between the disk and in-memory paths rests on global
   sequence numbers assigned before any shard runs: the coordinator
   prefix-sums the per-example multipliers (a pure function of the seed
   corpus), giving example [i] the seqno interval [base(i), base(i+1)).
   Slot 0 of the interval is the seed example itself; slot [s] is expansion
   attempt [s] (an attempt that substitutes nothing emits no record,
   leaving a hole in the interval — holes are fine, the order is strict
   ascending, not contiguous). Each shard's records are therefore a pure
   function of (seed, example index), emitted in ascending seqno order, and
   the k-way merge by seqno reconstitutes exactly the order the in-memory
   path produces by concatenation. One Hash64 fold over the framed record
   bytes on each side decides equality of the entire corpus. *)

module Codec = Genie_dataset.Codec
module Spill = Genie_dataset.Spill
module Example = Genie_dataset.Example
module Expand = Genie_augment.Expand
module Gazettes = Genie_augment.Gazettes
module Fault = Genie_conc.Fault
module Tracer = Genie_observe.Tracer
module Span = Genie_observe.Span
module Probe = Genie_observe.Probe

type spill = { dir : string; threshold : int }

type stats = {
  st_seeds : int;  (* seed examples entering expansion *)
  st_slots : int;  (* seqno slots = sum of multipliers *)
  st_records : int;  (* records in the merged corpus *)
  st_runs : int;  (* spill runs merged *)
  st_run_bytes : int;  (* bytes spilled before the merge *)
  st_digest : string;  (* corpus digest (Codec.digest_records contract) *)
  st_corpus_path : string option;
}

let corpus_file = "corpus.shard"

(* --- seeds ------------------------------------------------------------------ *)

let seeds_of_pairs pairs =
  List.mapi
    (fun i (tokens, program) ->
      Example.make ~id:i ~tokens ~program ~source:Example.Synthesized ())
    pairs

let synthesize_seeds ?tracer ?workers ?fault ?cache ?max_attempts grammar cfg =
  seeds_of_pairs
    (Engine.synthesize ?tracer ?workers ?fault ?cache ?max_attempts grammar cfg)

(* --- seqno plan ------------------------------------------------------------- *)

(* bases.(i) = first seqno of example i; bases.(n) = total slot count *)
let seqno_bases ~expand_scale (seeds : Example.t array) : int array =
  let n = Array.length seeds in
  let bases = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    bases.(i + 1) <- bases.(i) + Expand.multiplier ~scale:expand_scale seeds.(i)
  done;
  bases

(* Expands examples [lo, hi) in seqno order, emitting into [emit]. The body
   is shared verbatim by the in-memory and spill paths: whatever [emit]
   does, the record sequence is identical. *)
let expand_range lib gz ~seed ~(seeds : Example.t array)
    ~(bases : int array) ~lo ~hi ~emit =
  for i = lo to hi - 1 do
    let e = seeds.(i) in
    let base = bases.(i) in
    emit { Codec.seqno = base; example = { e with Example.id = base } };
    let slots = bases.(i + 1) - base in
    if slots > 1 then begin
      let rng = Genie_util.Rng.create (Expand.shard_seed ~seed ~index:i) in
      for slot = 1 to slots - 1 do
        match Expand.expand_once lib gz rng e with
        | Some e' ->
            let sq = base + slot in
            emit { Codec.seqno = sq; example = { e' with Example.id = sq } }
        | None -> ()
      done
    end
  done

(* Contiguous chunks of the seed corpus: one shard per chunk. Coarse
   granularity (default 16 seeds per shard) keeps pool overhead low at
   small worker counts (see BENCH_synth caveat in the ROADMAP). *)
let chunks_of ~chunk n =
  let chunk = max 1 chunk in
  let rec go lo acc =
    if lo >= n then List.rev acc
    else
      let hi = min n (lo + chunk) in
      go hi ((lo, hi) :: acc)
  in
  go 0 []

let fault_hook_of fault =
  if Fault.active fault then
    Some
      (fun ~index ~attempt ->
        if Fault.crashes fault ~id:index ~attempt then Some Fault.Injected_crash
        else if Fault.drops fault ~id:index ~attempt then Some Fault.Injected_drop
        else None)
  else None

(* --- in-memory reference path ----------------------------------------------- *)

let corpus_records ?(workers = 0) ?(fault = Fault.none) ?(max_attempts = 3)
    ?(expand_scale = 1.0) ?(chunk = 16) lib gz ~seed seeds : Codec.record list =
  let arr = Array.of_list seeds in
  let bases = seqno_bases ~expand_scale arr in
  let groups =
    Genie_conc.Pool.map_list ~workers ~max_attempts
      ?fault_hook:(fault_hook_of fault)
      ~handler:(fun _slot (lo, hi) ->
        let out = ref [] in
        expand_range lib gz ~seed ~seeds:arr ~bases ~lo ~hi
          ~emit:(fun r -> out := r :: !out);
        List.rev !out)
      (chunks_of ~chunk (Array.length arr))
  in
  List.concat groups

let corpus_digest = Codec.digest_records

(* --- spill path -------------------------------------------------------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let corpus_to_spill ?(workers = 0) ?(fault = Fault.none) ?(max_attempts = 3)
    ?(expand_scale = 1.0) ?(chunk = 16) ?probe
    ?(tracer = Tracer.disabled) ~spill lib gz ~seed seeds :
    (stats, string) result =
  mkdir_p spill.dir;
  let arr = Array.of_list seeds in
  let bases = seqno_bases ~expand_scale arr in
  let chunks = chunks_of ~chunk (Array.length arr) in
  let t0 = Tracer.now_ns () in
  let run_lists =
    Genie_conc.Pool.map_list ~workers ~max_attempts
      ?fault_hook:(fault_hook_of fault)
      ~handler:(fun _slot (ci, (lo, hi)) ->
        let w =
          Spill.Writer.create ~dir:spill.dir ~shard:ci
            ~threshold:spill.threshold
        in
        expand_range lib gz ~seed ~seeds:arr ~bases ~lo ~hi
          ~emit:(Spill.Writer.add w);
        let runs = Spill.Writer.close w in
        (runs, Spill.Writer.bytes_written w))
      (List.mapi (fun i c -> (i, c)) chunks)
  in
  let runs = List.concat_map fst run_lists in
  let run_bytes = List.fold_left (fun acc (_, b) -> acc + b) 0 run_lists in
  (match probe with
  | Some p ->
      List.iter (fun _ -> Probe.incr p Probe.Spill_flush) runs;
      Probe.incr p Probe.Spill_merge
  | None -> ());
  (* Injected crashes can leave .tmp partials from the attempt that died
     mid-flush; the retry rewrote the real runs, so partials are garbage. *)
  Spill.sweep_tmp ~dir:spill.dir;
  let out = Filename.concat spill.dir corpus_file in
  match Spill.merge ~out runs with
  | Error e -> Error e
  | Ok (records, digest) ->
      Spill.remove_runs runs;
      if Tracer.enabled tracer then begin
        let seed_t = Tracer.seed tracer in
        let t1 = Tracer.now_ns () in
        let root =
          Span.v ~seed:seed_t ~request:0 ~seq:0 ~start_ns:t0 ~dur_ns:(t1 -. t0)
            ~attrs:
              [ ("records", string_of_int records);
                ("runs", string_of_int (List.length runs));
                ("digest", digest) ]
            "spill.merge"
        in
        Tracer.record tracer ~slot:0 root;
        List.iteri
          (fun i r ->
            Tracer.record tracer ~slot:0
              (Span.v ~seed:seed_t ~request:0 ~seq:(i + 1)
                 ~parent:root.Span.id ~start_ns:t0 ~dur_ns:0.0
                 ~attrs:
                   [ ("records", string_of_int r.Spill.run_records);
                     ("first", string_of_int r.Spill.run_first);
                     ("last", string_of_int r.Spill.run_last) ]
                 "spill.run"))
          runs
      end;
      Ok
        { st_seeds = Array.length arr;
          st_slots = bases.(Array.length arr);
          st_records = records;
          st_runs = List.length runs;
          st_run_bytes = run_bytes;
          st_digest = digest;
          st_corpus_path = Some out }
