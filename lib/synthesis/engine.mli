(** Randomized, depth-bounded synthesis by sampling (paper section 3.1),
    sharded for domain parallelism.

    Exhaustive enumeration grows exponentially with depth and library size, so
    the engine samples a configurable number of derivations per construct
    template, with a budget that halves at each depth: many low-depth
    derivations provide breadth, fewer high-depth ones add variance and
    expand the set of recognized programs.

    One depth's expansion frontier is split into one shard per construct
    template. Each shard derives its RNG from (seed, depth, rule index) —
    never from the worker id or the retry attempt — samples against the
    previous depths' tables (shared read-only), and memoizes semantic-function
    applications in a per-shard cache keyed by the structural hash of the
    sub-derivations. The coordinator merges shards in canonical rule order,
    dedups globally, and sorts every (non-terminal, depth) bucket by
    {!Genie_templates.Derivation.sort_key}, so the corpus is byte-identical
    at every [workers] count and under injected shard crashes (see
    docs/synthesis.md). *)

type config = {
  max_depth : int;  (** the paper uses 5 *)
  target_per_rule : int;  (** sampling target per construct template *)
  seed : int;
  purpose : [ `Training | `Paraphrase ];
      (** which per-template flag subsets to include (section 3.1) *)
}

val default_config : config

type stats = {
  shards : int;  (** shard executions scheduled: max_depth × enabled rules *)
  shard_retries : int;  (** shards re-run after an injected crash/drop *)
  cache_hits : int;  (** semantic applications answered by the memo cache *)
  cache_misses : int;
  merged : int;  (** derivations kept at merge (post global dedup), depth ≥ 1 *)
  deduped : int;  (** cross-shard duplicates dropped at merge *)
  merge_ns : float;  (** total time in the merge stage *)
  total_ns : float;
}

val synthesize_derivations :
  ?tracer:Genie_observe.Tracer.t ->
  ?workers:int ->
  ?fault:Genie_conc.Fault.t ->
  ?cache:bool ->
  ?max_attempts:int ->
  Genie_templates.Grammar.t -> config -> Genie_templates.Derivation.t list
(** All start-category derivations, deduplicated by (sentence, semantics)
    and returned in canonical (depth, structural key) order.

    [workers] (default 0) fans the per-depth shards over that many domains;
    [0] and [1] run the identical shard algorithm on the calling domain, and
    the output is byte-identical at every worker count. [fault] (default
    none) injects deterministic shard crashes/drops; a faulted shard is
    retried (same RNG, same output) up to [max_attempts] (default 3) times,
    so the corpus is unchanged under any surviving schedule. [cache]
    (default true) toggles the per-shard memo cache, which is
    observationally transparent.

    With [tracer], each depth records a span (its [request] field is the
    depth) with one [template] child per construct template carrying
    accepted/attempted counts and shard cache statistics, a [merge] child
    (kept/deduped counts), and a [shard.retry] child per injected-fault
    retry — span identity is (tracer seed, depth, seq, name), so a seeded
    corpus run traces identically across repeats and worker counts. *)

val synthesize_derivations_stats :
  ?tracer:Genie_observe.Tracer.t ->
  ?workers:int ->
  ?fault:Genie_conc.Fault.t ->
  ?cache:bool ->
  ?max_attempts:int ->
  Genie_templates.Grammar.t -> config ->
  Genie_templates.Derivation.t list * stats
(** {!synthesize_derivations} plus pipeline counters, for the benchmark
    harness and the CLI. *)

val corpus_digest :
  Genie_templates.Derivation.t list -> depth:int -> int * string
(** [(pairs, hex)] for the corpus slice at exactly [depth]: a
    {!Genie_util.Hash64} fold over the slice's structural sort keys in
    corpus order. This is what `test/golden/synth_d*.digest` pins and what
    `genie synthesize --digest-dir` emits (see docs/synthesis.md for the
    regold workflow). *)

val synthesize :
  ?tracer:Genie_observe.Tracer.t ->
  ?workers:int ->
  ?fault:Genie_conc.Fault.t ->
  ?cache:bool ->
  ?max_attempts:int ->
  Genie_templates.Grammar.t -> config ->
  (string list * Genie_thingtalk.Ast.program) list
(** The synthesized (sentence tokens, program) pairs. Every program
    type-checks (the semantic functions reject ill-typed combinations). *)

val synthesize_programs :
  ?tracer:Genie_observe.Tracer.t ->
  ?workers:int ->
  ?fault:Genie_conc.Fault.t ->
  ?cache:bool ->
  ?max_attempts:int ->
  Genie_templates.Grammar.t -> config -> Genie_thingtalk.Ast.program list
(** Programs only: the corpus for pretraining the decoder language model on a
    much larger program space (section 4.2). *)

val synthesize_policies :
  ?tracer:Genie_observe.Tracer.t ->
  ?workers:int ->
  ?fault:Genie_conc.Fault.t ->
  ?cache:bool ->
  ?max_attempts:int ->
  Genie_templates.Grammar.t -> config ->
  (string list * Genie_thingtalk.Ast.policy) list
(** TACL policies, for grammars whose start symbol is ["policy"]. *)
