(** Randomized, depth-bounded synthesis by sampling (paper section 3.1).

    Exhaustive enumeration grows exponentially with depth and library size, so
    the engine samples a configurable number of derivations per construct
    template, with a budget that halves at each depth: many low-depth
    derivations provide breadth, fewer high-depth ones add variance and
    expand the set of recognized programs. *)

type config = {
  max_depth : int;  (** the paper uses 5 *)
  target_per_rule : int;  (** sampling target per construct template *)
  seed : int;
  purpose : [ `Training | `Paraphrase ];
      (** which per-template flag subsets to include (section 3.1) *)
}

val default_config : config

val synthesize_derivations :
  ?tracer:Genie_observe.Tracer.t ->
  Genie_templates.Grammar.t -> config -> Genie_templates.Derivation.t list
(** All start-category derivations, deduplicated by (sentence, semantics).

    With [tracer], each depth records a span (its [request] field is the
    depth) with one [template] child per construct template carrying
    accepted/attempted counts — span identity is (tracer seed, depth, rule
    index), so a seeded corpus run traces identically across repeats. *)

val synthesize :
  ?tracer:Genie_observe.Tracer.t ->
  Genie_templates.Grammar.t -> config ->
  (string list * Genie_thingtalk.Ast.program) list
(** The synthesized (sentence tokens, program) pairs. Every program
    type-checks (the semantic functions reject ill-typed combinations). *)

val synthesize_programs :
  ?tracer:Genie_observe.Tracer.t ->
  Genie_templates.Grammar.t -> config -> Genie_thingtalk.Ast.program list
(** Programs only: the corpus for pretraining the decoder language model on a
    much larger program space (section 4.2). *)

val synthesize_policies :
  ?tracer:Genie_observe.Tracer.t ->
  Genie_templates.Grammar.t -> config ->
  (string list * Genie_thingtalk.Ast.policy) list
(** TACL policies, for grammars whose start symbol is ["policy"]. *)
