(* Randomized, depth-bounded synthesis by sampling (paper section 3.1).

   Exhaustive enumeration grows exponentially with depth and library size, so
   the engine samples a configurable number of derivations per construct
   template; the budget decreases exponentially with depth. Low-depth
   derivations provide breadth; the smaller number of high-depth derivations
   adds variance and expands the set of recognized programs. *)

open Genie_templates

type config = {
  max_depth : int;
  target_per_rule : int; (* target derivations per rule at depth 1 *)
  seed : int;
  (* which template subsets to use (the per-template boolean flag of the
     paper); [`Training] includes Both + Training_only, etc. *)
  purpose : [ `Training | `Paraphrase ];
}

let default_config = { max_depth = 5; target_per_rule = 200; seed = 1; purpose = `Training }

let flag_enabled purpose (f : Grammar.flag) =
  match (purpose, f) with
  | _, Grammar.Both -> true
  | `Training, Grammar.Training_only -> true
  | `Paraphrase, Grammar.Paraphrase_only -> true
  | _ -> false

type table = (string * int, Derivation.t array) Hashtbl.t

let derivs (tbl : table) cat depth : Derivation.t array =
  try Hashtbl.find tbl (cat, depth) with Not_found -> [||]

(* All derivations of [cat] with depth in [0, max_depth]. *)
let derivs_upto tbl cat max_depth =
  let out = ref [] in
  for d = 0 to max_depth do
    out := !out @ Array.to_list (derivs tbl cat d)
  done;
  !out

let literal_tokens lit = Genie_util.Tok.tokenize lit

let rule_tokens (rule : Grammar.rule) (children : Derivation.t list) =
  let rec go rhs children acc =
    match (rhs, children) with
    | [], [] -> List.rev acc
    | Grammar.L lit :: rest, cs -> go rest cs (List.rev_append (literal_tokens lit) acc)
    | Grammar.N _ :: rest, c :: cs ->
        go rest cs (List.rev_append c.Derivation.tokens acc)
    | Grammar.N _ :: _, [] -> invalid_arg "rule_tokens: arity mismatch"
    | [], _ :: _ -> invalid_arg "rule_tokens: arity mismatch"
  in
  go rule.Grammar.rhs children []

let nonterminals rule =
  List.filter_map (function Grammar.N c -> Some c | Grammar.L _ -> None) rule.Grammar.rhs

(* One sampling attempt for [rule] at [depth]: at least one child must have
   depth exactly [depth - 1]. *)
let sample_children rng tbl rule depth : Derivation.t list option =
  let nts = nonterminals rule in
  if nts = [] then None
  else begin
    let n = List.length nts in
    let forced = Genie_util.Rng.int rng n in
    let pick i cat =
      if i = forced then
        let arr = derivs tbl cat (depth - 1) in
        if Array.length arr = 0 then None else Some (Genie_util.Rng.pick_array rng arr)
      else begin
        (* uniform over depths < depth that are populated *)
        let choices = ref [] in
        for d = 0 to depth - 1 do
          if Array.length (derivs tbl cat d) > 0 then choices := d :: !choices
        done;
        match !choices with
        | [] -> None
        | ds ->
            let d = Genie_util.Rng.pick rng ds in
            Some (Genie_util.Rng.pick_array rng (derivs tbl cat d))
      end
    in
    let rec go i cats acc =
      match cats with
      | [] -> Some (List.rev acc)
      | cat :: rest -> (
          match pick i cat with
          | None -> None
          | Some d -> go (i + 1) rest (d :: acc))
    in
    go 0 nts []
  end

let apply_rule rule children depth : Derivation.t option =
  match rule.Grammar.sem children with
  | None -> None
  | Some { Grammar.value; tokens_override } ->
      let tokens =
        match tokens_override with
        | Some toks -> toks
        | None -> rule_tokens rule children
      in
      Some
        { Derivation.tokens;
          value;
          depth;
          fns = List.concat_map (fun c -> c.Derivation.fns) children }

(* With a tracer, each depth gets a span (request = depth) with one child
   per construct template recording accepted/attempted counts — the
   per-template attribution the flame summary aggregates. Span identity is
   (tracer seed, depth, rule index), so seeded corpus runs trace
   identically. *)
let synthesize_derivations ?(tracer = Genie_observe.Tracer.disabled)
    (g : Grammar.t) (cfg : config) : Derivation.t list =
  let module Tracer = Genie_observe.Tracer in
  let module Span = Genie_observe.Span in
  let now () = if Tracer.enabled tracer then Tracer.now_ns () else 0.0 in
  let rng = Genie_util.Rng.create cfg.seed in
  let tbl : table = Hashtbl.create 64 in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
  (* depth 0: terminals *)
  Hashtbl.iter
    (fun cat ds ->
      List.iter (fun d -> Hashtbl.replace seen (cat ^ "|" ^ Derivation.key d) ()) ds;
      Hashtbl.replace tbl (cat, 0) (Array.of_list ds))
    g.Grammar.terminals;
  let rules =
    List.filter (fun r -> flag_enabled cfg.purpose r.Grammar.flag) g.Grammar.rules
  in
  for depth = 1 to cfg.max_depth do
    let produced : (string, Derivation.t list ref) Hashtbl.t = Hashtbl.create 16 in
    let depth_start = now () in
    let depth_accepted = ref 0 in
    let depth_span_id =
      Span.id_of ~seed:(Tracer.seed tracer) ~request:depth ~attempt:0 ~seq:0
        ~name:"depth"
    in
    List.iteri
      (fun rule_i rule ->
        let rule_start = now () in
        let budget =
          Genie_util.Rng.budget_for_depth ~target:cfg.target_per_rule ~depth:(depth - 1)
        in
        (* extra attempts compensate for semantic-function rejections *)
        let attempts = budget * 3 in
        let accepted = ref 0 in
        let attempt = ref 0 in
        while !accepted < budget && !attempt < attempts do
          incr attempt;
          match sample_children rng tbl rule depth with
          | None -> ()
          | Some children -> (
              match apply_rule rule children depth with
              | None -> ()
              | Some d ->
                  let k = rule.Grammar.lhs ^ "|" ^ Derivation.key d in
                  if not (Hashtbl.mem seen k) then begin
                    Hashtbl.replace seen k ();
                    incr accepted;
                    let cell =
                      match Hashtbl.find_opt produced rule.Grammar.lhs with
                      | Some c -> c
                      | None ->
                          let c = ref [] in
                          Hashtbl.replace produced rule.Grammar.lhs c;
                          c
                    in
                    cell := d :: !cell
                  end)
        done;
        depth_accepted := !depth_accepted + !accepted;
        if Tracer.enabled tracer then
          Tracer.record tracer ~slot:0
            (Span.v ~seed:(Tracer.seed tracer) ~request:depth
               ~seq:(rule_i + 1) ~parent:depth_span_id
               ~attrs:
                 [ ("rule", rule.Grammar.lhs);
                   ("accepted", string_of_int !accepted);
                   ("attempts", string_of_int !attempt) ]
               ~start_ns:rule_start
               ~dur_ns:(now () -. rule_start)
               "template"))
      rules;
    if Tracer.enabled tracer then
      Tracer.record tracer ~slot:0
        (Span.v ~seed:(Tracer.seed tracer) ~request:depth ~seq:0
           ~attrs:
             [ ("rules", string_of_int (List.length rules));
               ("accepted", string_of_int !depth_accepted) ]
           ~start_ns:depth_start
           ~dur_ns:(now () -. depth_start)
           "depth");
    Hashtbl.iter (fun cat ds -> Hashtbl.replace tbl (cat, depth) (Array.of_list !ds)) produced
  done;
  derivs_upto tbl g.Grammar.start cfg.max_depth

(* The synthesized (sentence tokens, program) pairs. *)
let synthesize ?tracer (g : Grammar.t) (cfg : config) :
    (string list * Genie_thingtalk.Ast.program) list =
  List.filter_map
    (fun (d : Derivation.t) ->
      match d.value with
      | Derivation.V_frag (Genie_thingtalk.Ast.F_program p) -> Some (d.Derivation.tokens, p)
      | _ -> None)
    (synthesize_derivations ?tracer g cfg)

(* Programs only, for pretraining the decoder language model on a much larger
   program space (section 4.2). *)
let synthesize_programs ?tracer (g : Grammar.t) (cfg : config) :
    Genie_thingtalk.Ast.program list =
  List.map snd (synthesize ?tracer g cfg)

(* TACL policies (a grammar with start symbol "policy"). *)
let synthesize_policies ?tracer (g : Grammar.t) (cfg : config) :
    (string list * Genie_thingtalk.Ast.policy) list =
  List.filter_map
    (fun (d : Derivation.t) ->
      match d.value with
      | Derivation.V_frag (Genie_thingtalk.Ast.F_policy p) -> Some (d.Derivation.tokens, p)
      | _ -> None)
    (synthesize_derivations ?tracer g cfg)
