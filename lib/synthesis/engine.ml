(* Randomized, depth-bounded synthesis by sampling (paper section 3.1),
   sharded for domain parallelism.

   Exhaustive enumeration grows exponentially with depth and library size, so
   the engine samples a configurable number of derivations per construct
   template; the budget decreases exponentially with depth. Low-depth
   derivations provide breadth; the smaller number of high-depth derivations
   adds variance and expands the set of recognized programs.

   Parallel determinism contract. The expansion frontier of one depth is
   split into one shard per enabled construct template (the shard id also
   encodes the depth and, through the rule's semantic function, the
   Thingpedia class it draws from). Each shard is a pure function of
   (grammar, config, depth, rule index): it derives its own RNG from
   [shard_seed], samples against the previous depths' tables (shared
   read-only across domains — the coordinator only writes between depths),
   dedups locally, and memoizes its semantic-function applications in a
   per-shard cache keyed by the structural hash of the sub-derivations.
   The coordinator then merges shard outputs in canonical rule order,
   dedups globally, and sorts every (non-terminal, depth) bucket by
   {!Derivation.sort_key}. Nothing observable depends on worker count,
   scheduling, hash-table iteration order, or retry timing — so the corpus
   is byte-identical at any [workers] setting, and an injected shard crash
   followed by a retry reproduces the exact same shard output (the RNG is
   never derived from the attempt number). *)

open Genie_templates
module Fault = Genie_conc.Fault
module Pool = Genie_conc.Pool
module Hash64 = Genie_util.Hash64

type config = {
  max_depth : int;
  target_per_rule : int; (* target derivations per rule at depth 1 *)
  seed : int;
  (* which template subsets to use (the per-template boolean flag of the
     paper); [`Training] includes Both + Training_only, etc. *)
  purpose : [ `Training | `Paraphrase ];
}

let default_config = { max_depth = 5; target_per_rule = 200; seed = 1; purpose = `Training }

type stats = {
  shards : int;
  shard_retries : int;
  cache_hits : int;
  cache_misses : int;
  merged : int;
  deduped : int;
  merge_ns : float;
  total_ns : float;
}

let flag_enabled purpose (f : Grammar.flag) =
  match (purpose, f) with
  | _, Grammar.Both -> true
  | `Training, Grammar.Training_only -> true
  | `Paraphrase, Grammar.Paraphrase_only -> true
  | _ -> false

(* Table entries carry the derivation's structural hash, computed once when
   the bucket is merged: shards combine child hashes into memo-cache keys on
   every sampling attempt, and recomputing the hash there would reprint the
   semantics each time. *)
type entry = { ed : Derivation.t; ehash : int64 }

type table = (string * int, entry array) Hashtbl.t

let derivs (tbl : table) cat depth : entry array =
  try Hashtbl.find tbl (cat, depth) with Not_found -> [||]

(* All derivations of [cat] with depth in [0, max_depth]. *)
let derivs_upto tbl cat max_depth =
  let out = ref [] in
  for d = 0 to max_depth do
    out := !out @ List.map (fun e -> e.ed) (Array.to_list (derivs tbl cat d))
  done;
  !out

let literal_tokens lit = Genie_util.Tok.tokenize lit

let rule_tokens (rule : Grammar.rule) (children : Derivation.t list) =
  let rec go rhs children acc =
    match (rhs, children) with
    | [], [] -> List.rev acc
    | Grammar.L lit :: rest, cs -> go rest cs (List.rev_append (literal_tokens lit) acc)
    | Grammar.N _ :: rest, c :: cs ->
        go rest cs (List.rev_append c.Derivation.tokens acc)
    | Grammar.N _ :: _, [] -> invalid_arg "rule_tokens: arity mismatch"
    | [], _ :: _ -> invalid_arg "rule_tokens: arity mismatch"
  in
  go rule.Grammar.rhs children []

let nonterminals rule =
  List.filter_map (function Grammar.N c -> Some c | Grammar.L _ -> None) rule.Grammar.rhs

(* One sampling attempt for [rule] at [depth]: at least one child must have
   depth exactly [depth - 1]. *)
let sample_children rng tbl rule depth : entry list option =
  let nts = nonterminals rule in
  if nts = [] then None
  else begin
    let n = List.length nts in
    let forced = Genie_util.Rng.int rng n in
    let pick i cat =
      if i = forced then
        let arr = derivs tbl cat (depth - 1) in
        if Array.length arr = 0 then None else Some (Genie_util.Rng.pick_array rng arr)
      else begin
        (* uniform over depths < depth that are populated *)
        let choices = ref [] in
        for d = 0 to depth - 1 do
          if Array.length (derivs tbl cat d) > 0 then choices := d :: !choices
        done;
        match !choices with
        | [] -> None
        | ds ->
            let d = Genie_util.Rng.pick rng ds in
            Some (Genie_util.Rng.pick_array rng (derivs tbl cat d))
      end
    in
    let rec go i cats acc =
      match cats with
      | [] -> Some (List.rev acc)
      | cat :: rest -> (
          match pick i cat with
          | None -> None
          | Some d -> go (i + 1) rest (d :: acc))
    in
    go 0 nts []
  end

let apply_rule rule children depth : Derivation.t option =
  match rule.Grammar.sem children with
  | None -> None
  | Some { Grammar.value; tokens_override } ->
      let tokens =
        match tokens_override with
        | Some toks -> toks
        | None -> rule_tokens rule children
      in
      Some
        { Derivation.tokens;
          value;
          depth;
          fns = List.concat_map (fun c -> c.Derivation.fns) children }

(* A shard-accepted derivation with everything the merge needs precomputed:
   the global dedup identity [afull] = lhs ^ "|" ^ key and its 64-bit hash,
   plus the bucket decoration (sort key, structural hash). All of it is a
   pure function of the derivation's content, so computing it inside the
   shard moves the string work onto the parallel domains and leaves the
   coordinator's merge with integer-keyed probes and a sort over
   ready-made keys. *)
type accepted = {
  ad : Derivation.t;
  afull : string;
  ahash : int64;
  asort : string;
  aehash : int64;
}

let accept (rule_lhs : string) (d : Derivation.t) (dkey : string) : accepted =
  let afull = rule_lhs ^ "|" ^ dkey in
  let asort, aehash = Derivation.decorate_keyed d dkey in
  { ad = d; afull; ahash = Hash64.string 0L afull; asort; aehash }

(* The dedup set: keyed by the 64-bit hash of the full dedup identity, with
   exact-string confirmation on the (rare) hash collision — so long
   "lhs|key" strings are hashed once, in the shard, instead of on every
   probe, and dedup semantics stay exact. *)
module Dedup = struct
  type t = (int64, string list) Hashtbl.t

  let create n : t = Hashtbl.create n

  let mem (t : t) h full =
    match Hashtbl.find_opt t h with
    | Some l -> List.mem full l
    | None -> false

  let add (t : t) h full =
    match Hashtbl.find_opt t h with
    | Some l -> Hashtbl.replace t h (full :: l)
    | None -> Hashtbl.replace t h [ full ]
end

(* Bucket order is by structural sort key, precomputed in the shards. *)
let sort_bucket (ds : accepted list) : entry array =
  let keyed =
    Array.of_list (List.map (fun a -> (a.asort, { ed = a.ad; ehash = a.aehash })) ds)
  in
  Array.sort (fun (a, _) (b, _) -> String.compare a b) keyed;
  Array.map snd keyed

(* The shard RNG is a pure function of (corpus seed, depth, rule index) —
   never of the worker id or the attempt number, so a shard re-run after an
   injected crash replays the identical sample sequence. *)
let shard_seed ~seed ~depth ~rule_i =
  Int64.to_int
    (Int64.shift_right_logical
       (Hash64.int (Hash64.int (Hash64.int 0L seed) depth) rule_i)
       2)

type shard_out = {
  out_accepted : accepted list;
      (* in acceptance order; [Derivation.key] was printed once at accept
         time, and its dedup/sort decorations ride along for the merge *)
  out_attempts : int;
  out_hits : int;
  out_misses : int;
}

(* One shard: sample [rule] at [depth] against the read-only tables built
   for depths < depth. [seen] holds the dedup keys of every derivation kept
   at lower depths; shards only read it (the coordinator updates it at
   merge time, between depths). The memo cache short-circuits the semantic
   function (and token assembly) when the same children tuple is sampled
   again — apply_rule is deterministic, so memoization is observationally
   transparent. *)
let run_shard ~use_cache (tbl : table) (seen : Dedup.t) (cfg : config)
    (rule : Grammar.rule) ~depth ~rule_i : shard_out =
  let rng = Genie_util.Rng.create (shard_seed ~seed:cfg.seed ~depth ~rule_i) in
  let budget =
    Genie_util.Rng.budget_for_depth ~target:cfg.target_per_rule ~depth:(depth - 1)
  in
  (* extra attempts compensate for semantic-function rejections *)
  let max_attempts = budget * 3 in
  let local_seen = Dedup.create 64 in
  (* the memo caches the whole decorated candidate: printing the semantics
     for dedup costs more than the semantic function itself, so a hit skips
     the semantic function, the printing, and the dedup/sort hashing *)
  let memo : (int64, accepted option) Hashtbl.t = Hashtbl.create 256 in
  let build children =
    Option.map
      (fun d -> accept rule.Grammar.lhs d (Derivation.key d))
      (apply_rule rule (List.map (fun c -> c.ed) children) depth)
  in
  let hits = ref 0 and misses = ref 0 in
  let accepted = ref [] and n_accepted = ref 0 and attempt = ref 0 in
  while !n_accepted < budget && !attempt < max_attempts do
    incr attempt;
    match sample_children rng tbl rule depth with
    | None -> ()
    | Some children -> (
        let produced =
          if use_cache then begin
            let k =
              List.fold_left
                (fun h c -> Hash64.combine h c.ehash)
                (Hash64.int 0L rule_i) children
            in
            match Hashtbl.find_opt memo k with
            | Some r ->
                incr hits;
                r
            | None ->
                incr misses;
                let r = build children in
                Hashtbl.replace memo k r;
                r
          end
          else build children
        in
        match produced with
        | None -> ()
        | Some a ->
            if
              not
                (Dedup.mem seen a.ahash a.afull
                || Dedup.mem local_seen a.ahash a.afull)
            then begin
              Dedup.add local_seen a.ahash a.afull;
              incr n_accepted;
              accepted := a :: !accepted
            end)
  done;
  { out_accepted = List.rev !accepted;
    out_attempts = !attempt;
    out_hits = !hits;
    out_misses = !misses }

(* With a tracer, each depth gets a span (request = depth) with one child
   per construct template recording accepted/attempted counts and shard
   cache statistics, a [merge] child recording kept/deduped counts, and one
   [shard.retry] child per injected-fault retry (sorted by (shard, attempt)
   so the trace is independent of completion order). Span identity is
   (tracer seed, depth, seq, name), so seeded corpus runs trace identically
   at any worker count. *)
let synthesize_derivations_stats ?(tracer = Genie_observe.Tracer.disabled)
    ?(workers = 0) ?(fault = Fault.none) ?(cache = true) ?(max_attempts = 3)
    (g : Grammar.t) (cfg : config) : Derivation.t list * stats =
  let module Tracer = Genie_observe.Tracer in
  let module Span = Genie_observe.Span in
  let now () = Tracer.now_ns () in
  let start_ns = now () in
  let tbl : table = Hashtbl.create 64 in
  let seen = Dedup.create 4096 in
  (* depth 0: terminals, deduplicated and bucket-sorted like every other
     depth so the canonical corpus order never depends on construction
     order. *)
  Hashtbl.iter
    (fun cat ds ->
      let kept =
        List.filter_map
          (fun d ->
            let a = accept cat d (Derivation.key d) in
            if Dedup.mem seen a.ahash a.afull then None
            else begin
              Dedup.add seen a.ahash a.afull;
              Some a
            end)
          ds
      in
      Hashtbl.replace tbl (cat, 0) (sort_bucket kept))
    g.Grammar.terminals;
  let rules =
    List.filter (fun r -> flag_enabled cfg.purpose r.Grammar.flag) g.Grammar.rules
  in
  let n_rules = List.length rules in
  let indexed = List.mapi (fun i r -> (i, r)) rules in
  let total_retries = ref 0 in
  let total_hits = ref 0 and total_misses = ref 0 in
  let total_merged = ref 0 and total_deduped = ref 0 in
  let merge_ns = ref 0.0 in
  for depth = 1 to cfg.max_depth do
    let depth_start = now () in
    let depth_accepted = ref 0 in
    let depth_span_id =
      Span.id_of ~seed:(Tracer.seed tracer) ~request:depth ~attempt:0 ~seq:0
        ~name:"depth"
    in
    (* Shard id: global over the whole run, so a fault schedule names one
       specific (depth, rule) shard regardless of worker count. *)
    let shard_id rule_i = ((depth - 1) * n_rules) + rule_i in
    let fault_hook =
      if Fault.active fault then
        Some
          (fun ~index ~attempt ->
            let id = shard_id index in
            if Fault.crashes fault ~id ~attempt then Some Fault.Injected_crash
            else if Fault.drops fault ~id ~attempt then Some Fault.Injected_drop
            else None)
      else None
    in
    let retries = ref [] in
    let on_retry ~index ~attempt e =
      retries := (index, attempt, Printexc.to_string e) :: !retries
    in
    let outs =
      Pool.map_list ~workers ~max_attempts ?fault_hook ~on_retry
        ~handler:(fun _slot (rule_i, rule) ->
          run_shard ~use_cache:cache tbl seen cfg rule ~depth ~rule_i)
        indexed
    in
    (* Deterministic merge: shards in canonical rule order, global dedup,
       then each (non-terminal, depth) bucket sorted by structural key. *)
    let merge_start = now () in
    let deduped_before = !total_deduped and merged_before = !total_merged in
    let produced : (string, accepted list ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter2
      (fun (_rule_i, rule) out ->
        List.iter
          (fun a ->
            if Dedup.mem seen a.ahash a.afull then incr total_deduped
            else begin
              Dedup.add seen a.ahash a.afull;
              incr total_merged;
              let cell =
                match Hashtbl.find_opt produced rule.Grammar.lhs with
                | Some c -> c
                | None ->
                    let c = ref [] in
                    Hashtbl.replace produced rule.Grammar.lhs c;
                    c
              in
              cell := a :: !cell
            end)
          out.out_accepted)
      indexed outs;
    Hashtbl.iter
      (fun cat ds -> Hashtbl.replace tbl (cat, depth) (sort_bucket !ds))
      produced;
    let merge_end = now () in
    merge_ns := !merge_ns +. (merge_end -. merge_start);
    let depth_retries =
      List.sort compare !retries
    in
    total_retries := !total_retries + List.length depth_retries;
    List.iter2
      (fun (rule_i, rule) out ->
        depth_accepted := !depth_accepted + List.length out.out_accepted;
        total_hits := !total_hits + out.out_hits;
        total_misses := !total_misses + out.out_misses;
        if Tracer.enabled tracer then
          Tracer.record tracer ~slot:0
            (Span.v ~seed:(Tracer.seed tracer) ~request:depth
               ~seq:(rule_i + 1) ~parent:depth_span_id
               ~attrs:
                 [ ("rule", rule.Grammar.lhs);
                   ("accepted", string_of_int (List.length out.out_accepted));
                   ("attempts", string_of_int out.out_attempts);
                   ("cache_hits", string_of_int out.out_hits);
                   ("cache_misses", string_of_int out.out_misses) ]
               ~start_ns:depth_start
               ~dur_ns:(now () -. depth_start)
               "template"))
      indexed outs;
    if Tracer.enabled tracer then begin
      Tracer.record tracer ~slot:0
        (Span.v ~seed:(Tracer.seed tracer) ~request:depth
           ~seq:(n_rules + 1) ~parent:depth_span_id
           ~attrs:
             [ ("kept", string_of_int (!total_merged - merged_before));
               ("deduped", string_of_int (!total_deduped - deduped_before)) ]
           ~start_ns:merge_start
           ~dur_ns:(merge_end -. merge_start)
           "merge");
      List.iteri
        (fun j (rule_i, attempt, err) ->
          Tracer.record tracer ~slot:0
            (Span.v ~seed:(Tracer.seed tracer) ~request:depth
               ~seq:(n_rules + 2 + j) ~parent:depth_span_id
               ~attrs:
                 [ ("shard", string_of_int (shard_id rule_i));
                   ("attempt", string_of_int attempt);
                   ("error", err) ]
               ~start_ns:depth_start
               ~dur_ns:0.0
               "shard.retry"))
        depth_retries;
      Tracer.record tracer ~slot:0
        (Span.v ~seed:(Tracer.seed tracer) ~request:depth ~seq:0
           ~attrs:
             [ ("rules", string_of_int n_rules);
               ("accepted", string_of_int !depth_accepted) ]
           ~start_ns:depth_start
           ~dur_ns:(now () -. depth_start)
           "depth")
    end
  done;
  let stats =
    { shards = cfg.max_depth * n_rules;
      shard_retries = !total_retries;
      cache_hits = !total_hits;
      cache_misses = !total_misses;
      merged = !total_merged;
      deduped = !total_deduped;
      merge_ns = !merge_ns;
      total_ns = now () -. start_ns }
  in
  (derivs_upto tbl g.Grammar.start cfg.max_depth, stats)

let synthesize_derivations ?tracer ?workers ?fault ?cache ?max_attempts g cfg =
  fst (synthesize_derivations_stats ?tracer ?workers ?fault ?cache ?max_attempts g cfg)

(* The per-depth corpus digest the golden files and the CI smoke check: a
   Hash64 fold over the structural sort keys of the depth's derivations, in
   corpus order. Any reordering, missing pair or changed pair changes it. *)
let corpus_digest ds ~depth =
  let at = List.filter (fun d -> d.Derivation.depth = depth) ds in
  let h =
    List.fold_left (fun h d -> Hash64.string h (Derivation.sort_key d)) 0L at
  in
  (List.length at, Hash64.to_hex h)

(* The synthesized (sentence tokens, program) pairs. *)
let synthesize ?tracer ?workers ?fault ?cache ?max_attempts (g : Grammar.t)
    (cfg : config) : (string list * Genie_thingtalk.Ast.program) list =
  List.filter_map
    (fun (d : Derivation.t) ->
      match d.value with
      | Derivation.V_frag (Genie_thingtalk.Ast.F_program p) -> Some (d.Derivation.tokens, p)
      | _ -> None)
    (synthesize_derivations ?tracer ?workers ?fault ?cache ?max_attempts g cfg)

(* Programs only, for pretraining the decoder language model on a much larger
   program space (section 4.2). *)
let synthesize_programs ?tracer ?workers ?fault ?cache ?max_attempts
    (g : Grammar.t) (cfg : config) : Genie_thingtalk.Ast.program list =
  List.map snd (synthesize ?tracer ?workers ?fault ?cache ?max_attempts g cfg)

(* TACL policies (a grammar with start symbol "policy"). *)
let synthesize_policies ?tracer ?workers ?fault ?cache ?max_attempts
    (g : Grammar.t) (cfg : config) :
    (string list * Genie_thingtalk.Ast.policy) list =
  List.filter_map
    (fun (d : Derivation.t) ->
      match d.value with
      | Derivation.V_frag (Genie_thingtalk.Ast.F_policy p) -> Some (d.Derivation.tokens, p)
      | _ -> None)
    (synthesize_derivations ?tracer ?workers ?fault ?cache ?max_attempts g cfg)
