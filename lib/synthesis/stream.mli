(** Streaming, disk-backed corpus pipeline (paper-scale corpora).

    Parameter expansion — the phase that multiplies every synthesized seed
    example into 1-30x fresh-valued copies — runs as chunked shards that
    spill sorted runs to disk ({!Genie_dataset.Spill}); the coordinator
    performs an external k-way merge over the run files into one corpus
    shard. Peak memory is bounded by (chunk x multiplier + one record per
    run), independent of corpus size.

    Determinism: the coordinator prefix-sums the per-example multipliers
    into global seqno intervals before any shard runs; each shard's records
    are a pure function of (seed, example index) emitted in ascending seqno
    order, so the merge by seqno reconstitutes exactly the in-memory
    concatenation order. {!corpus_digest} on the in-memory list equals the
    digest the merge computes over the bytes it writes — at every worker
    count, every spill threshold, and under injected shard crashes. *)

type spill = {
  dir : string;  (** spill directory (created if missing) *)
  threshold : int;
      (** records buffered per shard before a run is flushed;
          [<= 0] = unbounded (one run per shard) *)
}

type stats = {
  st_seeds : int;  (** seed examples entering expansion *)
  st_slots : int;  (** seqno slots = sum of multipliers *)
  st_records : int;  (** records in the merged corpus *)
  st_runs : int;  (** spill runs merged *)
  st_run_bytes : int;  (** bytes spilled before the merge *)
  st_digest : string;  (** corpus digest ({!Genie_dataset.Codec} contract) *)
  st_corpus_path : string option;
}

val corpus_file : string
(** The merged corpus shard's file name inside the spill directory. *)

val mkdir_p : string -> unit
(** Recursive best-effort directory creation (used for spill dirs). *)

val seeds_of_pairs :
  (string list * Genie_thingtalk.Ast.program) list ->
  Genie_dataset.Example.t list
(** Engine output as seed examples, ids = corpus positions. *)

val synthesize_seeds :
  ?tracer:Genie_observe.Tracer.t ->
  ?workers:int ->
  ?fault:Genie_conc.Fault.t ->
  ?cache:bool ->
  ?max_attempts:int ->
  Genie_templates.Grammar.t ->
  Engine.config ->
  Genie_dataset.Example.t list

val corpus_records :
  ?workers:int ->
  ?fault:Genie_conc.Fault.t ->
  ?max_attempts:int ->
  ?expand_scale:float ->
  ?chunk:int ->
  Genie_thingtalk.Schema.Library.t ->
  Genie_augment.Gazettes.t ->
  seed:int ->
  Genie_dataset.Example.t list ->
  Genie_dataset.Codec.record list
(** The in-memory reference path: the full expanded corpus as records in
    seqno order. Byte-identical at every worker count and under fault
    schedules (same contract as [Expand.expand_dataset_sharded]). *)

val corpus_digest : Genie_dataset.Codec.record list -> int * string
(** [(records, digest hex)] — {!Genie_dataset.Codec.digest_records}. *)

val corpus_to_spill :
  ?workers:int ->
  ?fault:Genie_conc.Fault.t ->
  ?max_attempts:int ->
  ?expand_scale:float ->
  ?chunk:int ->
  ?probe:Genie_observe.Probe.t ->
  ?tracer:Genie_observe.Tracer.t ->
  spill:spill ->
  Genie_thingtalk.Schema.Library.t ->
  Genie_augment.Gazettes.t ->
  seed:int ->
  Genie_dataset.Example.t list ->
  (stats, string) result
(** The streaming path: shards spill sorted runs, the external merge writes
    [dir/corpus.shard] and removes the runs. [st_digest] must equal the
    {!corpus_digest} of {!corpus_records} under the same (seed, scale,
    fault) — the differential oracle in [test/suite_stream.ml]. With
    [probe], bumps [Spill_flush]/[Spill_merge]; with [tracer], records a
    [spill.merge] span with one [spill.run] child per run. *)
