(* Minimal JSON emission for benchmark artifacts. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest decimal representation that round-trips to the same float: a
   fixed "%.6g" silently corrupts values with more than six significant
   digits (e.g. nanosecond-scale latency sums), while a fixed "%.17g" is
   needlessly long for the common case. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let rec go p =
      let s = Printf.sprintf "%.*g" p f in
      if p >= 17 || float_of_string s = f then s else go (p + 1)
    in
    go 1

let to_string ?(indent = 2) t =
  let buf = Buffer.create 256 in
  let pad level = String.make (indent * level) ' ' in
  let rec go level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf (pad (level + 1));
            go (level + 1) item)
          items;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (pad level);
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf (pad (level + 1));
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\": ";
            go (level + 1) v)
          fields;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (pad level);
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* Single-line rendering for JSONL streams (one value per line), where the
   pretty printer's embedded newlines would corrupt the framing. *)
let to_string_compact t =
  let buf = Buffer.create 128 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            go item)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            go v)
          fields;
        Buffer.add_char buf '}'
  in
  go t;
  Buffer.contents buf

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')
