(** Process resource probes ([/proc]-based, Linux-only; [None]/[false]
    elsewhere so callers report the metric as absent, never invented). *)

val peak_rss_kb : unit -> int option
(** VmHWM from [/proc/self/status]: the process peak resident set, in kB. *)

val rss_kb : unit -> int option
(** VmRSS: the current resident set, in kB. *)

val reset_peak_rss : unit -> bool
(** Resets the peak-RSS watermark (writes ["5"] to [/proc/self/clear_refs],
    Linux ≥ 4.0) so per-phase high-water marks can be measured. Returns
    whether the reset took effect. *)
