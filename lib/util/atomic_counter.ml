(* Thread-safe integer counters on Stdlib.Atomic: safe to bump from several
   domains at once, unlike Counter's hashtable-backed multisets. *)

type t = int Atomic.t

let create ?(value = 0) () = Atomic.make value
let incr t = Atomic.incr t

let rec add t n =
  let cur = Atomic.get t in
  if not (Atomic.compare_and_set t cur (cur + n)) then add t n

let fetch_add t n = Atomic.fetch_and_add t n
let get t = Atomic.get t
let set t v = Atomic.set t v
let reset t = set t 0
