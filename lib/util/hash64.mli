(** Deterministic 64-bit hashing (splitmix64 finalizer).

    Used wherever the toolkit needs values that are pure functions of their
    inputs and bit-stable across runs, platforms and worker counts: the
    fault injector's schedules and the tracing layer's span ids and trace
    digests. Not a cryptographic hash. *)

val mix64 : int64 -> int64
(** The splitmix64 finalizer: a bijective avalanche over 64 bits. *)

val combine : int64 -> int64 -> int64
(** Folds one more 64-bit word into a running hash state. *)

val int : int64 -> int -> int64
(** [combine] specialised to native ints. *)

val string : int64 -> string -> int64
(** Folds a string (length-prefixed, byte by byte) into the state. *)

val to_hex : int64 -> string
(** 16 lowercase hex digits, zero-padded. *)
