(** Weighted multisets of strings: vocabulary statistics, alignment counts
    and n-gram language models. *)

type t

val create : unit -> t

val add : ?weight:float -> t -> string -> unit
(** Adds [weight] (default 1.0) to a key's count. *)

val count : t -> string -> float
(** The accumulated count of a key (0 when absent). *)

val mem : t -> string -> bool
val total : t -> float
val distinct : t -> int
val iter : (string -> float -> unit) -> t -> unit
val to_list : t -> (string * float) list

val top : int -> t -> (string * float) list
(** The [n] highest-count entries, ties broken by key. *)

val prob : ?alpha:float -> ?vocab:int -> t -> string -> float
(** Relative frequency with optional add-[alpha] smoothing over a vocabulary
    of [vocab] keys. *)
