(** Deterministic splittable pseudo-random number generator (splitmix64).

    Every stochastic component of the toolkit takes an explicit generator so
    that synthesis, paraphrasing, augmentation and training are reproducible,
    and experiments can report mean +- half-range over seeds as the paper
    does. *)

type t
(** A mutable generator state. *)

val create : int -> t
(** [create seed] makes a generator with the given seed. Equal seeds yield
    equal streams. *)

val cursor : t -> int64
(** The generator's raw stream position. A generator restored with
    {!set_cursor} from a saved cursor continues the original stream draw
    for draw — the checkpoint/resume contract for the training loop's root
    stream. *)

val set_cursor : t -> int64 -> unit
(** Overwrites the stream position with a saved {!cursor}. *)

val split : t -> t
(** [split t] returns a fresh generator whose stream is independent of the
    parent's subsequent draws. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). Raises [Invalid_argument]
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool
(** A fair coin flip. *)

val flip : t -> float -> bool
(** [flip t p] is true with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

val pick_array : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val pick_opt : t -> 'a list -> 'a option
(** Uniform choice, or [None] on the empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher-Yates shuffle. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] draws [k] elements without replacement (all of [xs] when
    [k >= length xs]). *)

val weighted : t -> ('a * float) list -> 'a
(** Weighted choice; weights must sum to a positive value. *)

val budget_for_depth : target:int -> depth:int -> int
(** The synthesis sampling budget at a derivation depth: the paper's sampler
    draws exponentially fewer derivations as depth grows (section 3.1). Never
    returns less than 1. *)
