(* Natural-language tokenization shared by the synthesizer, the paraphrase
   simulator and the semantic parsers. Tokens are lowercase; punctuation is
   split off; quoted spans are preserved as separate quote tokens so that the
   argument identifier can find free-form parameters. *)

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let is_punct c =
  match c with
  | ',' | '.' | '!' | '?' | ';' | ':' | '(' | ')' | '"' -> true
  | _ -> false

let contains_char c s = String.exists (fun x -> x = c) s

(* Chunks that must stay whole: URLs, email addresses, file paths. *)
let is_atomic_chunk chunk =
  let n = String.length chunk in
  let internal_dot =
    (* a dot strictly inside the word ("notes.txt", "example.com"), as opposed
       to sentence-final punctuation *)
    n > 2 && String.exists (fun c -> c = '.') (String.sub chunk 1 (n - 2))
  in
  let is_time =
    (* clock times like 8:30 stay whole for the argument identifier *)
    contains_char ':' chunk
    && String.for_all (fun c -> (c >= '0' && c <= '9') || c = ':') chunk
  in
  n > 1
  && ((n > 4 && (String.sub chunk 0 4 = "http" || String.sub chunk 0 4 = "www."))
     || (contains_char '@' chunk && contains_char '.' chunk && chunk.[0] <> '@')
     || chunk.[0] = '/'
     || internal_dot
     || is_time)

(* Splits a sentence into tokens. Apostrophes stay inside words ("don't"),
   '@' and '#' stay attached to usernames/hashtags, '$' stays attached to
   placeholders; URLs, email addresses and file paths are kept whole. *)
let tokenize s =
  let chunks = String.split_on_char ' ' s in
  let tokenize_chunk chunk =
    let n = String.length chunk in
    let buf = Buffer.create 16 in
    let toks = ref [] in
    let flush () =
      if Buffer.length buf > 0 then begin
        toks := Buffer.contents buf :: !toks;
        Buffer.clear buf
      end
    in
    for i = 0 to n - 1 do
      let c = chunk.[i] in
      if is_space c then flush ()
      else if is_punct c then begin
        flush ();
        toks := String.make 1 c :: !toks
      end
      else Buffer.add_char buf (Char.lowercase_ascii c)
    done;
    flush ();
    List.rev !toks
  in
  List.concat_map
    (fun chunk ->
      if chunk = "" then []
      else if is_atomic_chunk chunk then [ String.lowercase_ascii chunk ]
      else tokenize_chunk chunk)
    chunks

let detokenize toks = String.concat " " toks

let words s = List.filter (fun t -> String.length t > 1 || (t.[0] >= 'a' && t.[0] <= 'z')) (tokenize s)

(* N-grams over a token list, as token lists. *)
let ngrams n toks =
  let arr = Array.of_list toks in
  let len = Array.length arr in
  let out = ref [] in
  for i = 0 to len - n do
    out := Array.to_list (Array.sub arr i n) :: !out
  done;
  List.rev !out

let bigrams toks = ngrams 2 toks

(* All n-grams for n in [1; max_n], joined with spaces. *)
let all_ngrams max_n toks =
  let out = ref [] in
  for n = 1 to max_n do
    out := !out @ List.map (String.concat " ") (ngrams n toks)
  done;
  !out

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let ends_with ~suffix s =
  String.length s >= String.length suffix
  && String.sub s (String.length s - String.length suffix) (String.length suffix) = suffix

let contains_substring ~sub s =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else
    let rec go i = if i + m > n then false else String.sub s i m = sub || go (i + 1) in
    go 0

(* Finds the first occurrence of the token sub-sequence [sub] in [toks] and
   returns the tokens before and after it. *)
let match_sub toks sub =
  let rec prefix p t =
    match (p, t) with
    | [], rest -> Some rest
    | x :: p', y :: t' when x = y -> prefix p' t'
    | _ -> None
  in
  let rec go before = function
    | [] -> None
    | t :: rest as all -> (
        match prefix sub all with
        | Some after -> Some (List.rev before, after)
        | None -> go (t :: before) rest)
  in
  if sub = [] then None else go [] toks

let split_on_string ~sep s =
  let seplen = String.length sep in
  if seplen = 0 then invalid_arg "Tok.split_on_string: empty separator";
  let rec go start acc =
    let rec find i =
      if i + seplen > String.length s then None
      else if String.sub s i seplen = sep then Some i
      else find (i + 1)
    in
    match find start with
    | None -> List.rev (String.sub s start (String.length s - start) :: acc)
    | Some i -> go (i + seplen) (String.sub s start (i - start) :: acc)
  in
  go 0 []
