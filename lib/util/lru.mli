(** A generic string-keyed LRU cache with hit/miss/eviction counters.

    Backs both the serve layer's parse cache ({!Genie_serve.Parse_cache})
    and the runtime's compiled-program cache
    ({!Genie_runtime.Compile_cache}): assistant traffic repeats heavily, so
    a small recency cache in front of an expensive stage (aligner decode,
    ThingTalk compilation) answers the common case in O(1). The cache is
    {e not} thread-safe: callers shard by key so each key lives in exactly
    one domain's private cache. *)

type 'a t

type stats = { hits : int; misses : int; evictions : int; entries : int }

val create : capacity:int -> 'a t
(** [capacity <= 0] disables caching (every lookup misses, nothing is
    stored). *)

val find : 'a t -> string -> 'a option
(** On a hit the entry becomes most-recently-used. Updates hit/miss
    counters. *)

val add : 'a t -> string -> 'a -> unit
(** Inserts as most-recently-used, evicting the least-recently-used entry
    when over capacity. Re-adding an existing key replaces its value and
    refreshes its recency. *)

val mem : 'a t -> string -> bool
(** Membership without touching recency or counters. *)

val length : 'a t -> int
val capacity : 'a t -> int
val stats : 'a t -> stats
val clear : 'a t -> unit
(** Drops all entries; keeps the counters. *)

val keys_mru : 'a t -> string list
(** Keys from most- to least-recently-used (for tests and diagnostics). *)
