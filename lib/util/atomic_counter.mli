(** Lock-free integer counters shared between domains.

    {!Counter} is a single-domain weighted multiset; this is the thread-safe
    scalar companion used by the serving layer's metrics, where several
    worker domains bump the same counter concurrently. *)

type t

val create : ?value:int -> unit -> t
(** A counter starting at [value] (default 0). *)

val incr : t -> unit
(** Atomically adds 1. *)

val add : t -> int -> unit
(** Atomically adds [n] (which may be negative). *)

val fetch_add : t -> int -> int
(** Atomically adds [n] and returns the value the counter held {e before}
    the addition — the primitive behind lock-free ring-buffer cursors. *)

val get : t -> int
(** The current value. *)

val set : t -> int -> unit
(** Overwrites the value (used by [reset] paths, not by hot paths). *)

val reset : t -> unit
(** [set t 0]. *)
