(* Process resource probes, Linux-only by design: on other platforms every
   probe degrades to None/false and callers report the metric as absent
   rather than inventing a number. *)

let proc_status_field field =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      let prefix = field ^ ":" in
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> None
        | line when String.length line > String.length prefix
                    && String.sub line 0 (String.length prefix) = prefix ->
            let rest =
              String.trim
                (String.sub line (String.length prefix)
                   (String.length line - String.length prefix))
            in
            (* "123456 kB" *)
            let digits =
              match String.index_opt rest ' ' with
              | Some i -> String.sub rest 0 i
              | None -> rest
            in
            int_of_string_opt digits
        | _ -> scan ()
      in
      let r = scan () in
      close_in_noerr ic;
      r

let peak_rss_kb () = proc_status_field "VmHWM"
let rss_kb () = proc_status_field "VmRSS"

(* Writing "5" to /proc/self/clear_refs resets the peak-RSS watermark
   (Linux >= 4.0), so a phase's true high-water mark can be measured even
   after an earlier phase used more memory. *)
let reset_peak_rss () =
  match open_out "/proc/self/clear_refs" with
  | exception Sys_error _ -> false
  | oc -> (
      try
        output_string oc "5";
        close_out oc;
        true
      with Sys_error _ ->
        close_out_noerr oc;
        false)
