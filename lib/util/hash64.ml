(* Splitmix64-style 64-bit mixing, shared by the fault injector and the
   tracing layer. Both need the same property: a cheap bijective finalizer
   whose output is a pure function of its inputs, so schedules and span ids
   are bit-stable across runs, platforms and worker counts. *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

(* Golden-ratio increment keeps successive combines from cancelling. *)
let phi = 0x9e3779b97f4a7c15L

let combine h x = mix64 (Int64.add (Int64.mul h phi) x)
let int h i = combine h (Int64.of_int i)

let string h s =
  let acc = ref (combine h (Int64.of_int (String.length s))) in
  String.iter (fun c -> acc := combine !acc (Int64.of_int (Char.code c))) s;
  !acc

let to_hex h = Printf.sprintf "%016Lx" h
