(* Deterministic splittable PRNG (splitmix64).

   Every stochastic component of the toolkit takes an explicit [Rng.t] so that
   experiments are reproducible and can report mean +- half-range over seeds,
   as the paper does. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* The raw stream position: persisting it and restoring with [set_cursor]
   resumes the stream exactly where it left off (checkpoint/resume). *)
let cursor t = t.state
let set_cursor t c = t.state <- c

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* A fresh generator whose stream is independent of the parent's future
   draws. *)
let split t = { state = next_int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* mask to 62 bits so the conversion to OCaml's 63-bit int stays positive *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* True with probability [p]. *)
let flip t p = float t 1.0 < p

let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let pick_array t xs =
  if Array.length xs = 0 then invalid_arg "Rng.pick_array: empty array";
  xs.(int t (Array.length xs))

let pick_opt t xs = match xs with [] -> None | xs -> Some (pick t xs)

let shuffle t xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

(* Sample [k] elements without replacement; returns all of [xs] when
   [k >= length xs]. *)
let sample t k xs =
  let n = List.length xs in
  if k >= n then xs
  else
    let shuffled = shuffle t xs in
    List.filteri (fun i _ -> i < k) shuffled

let weighted t pairs =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 pairs in
  if total <= 0.0 then invalid_arg "Rng.weighted: total weight must be positive";
  let x = float t total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.weighted: empty list"
    | [ (v, _) ] -> v
    | (v, w) :: rest -> if x < acc +. w then v else go (acc +. w) rest
  in
  go 0.0 pairs

(* Geometric-ish choice used by the synthesizer: the number of derivations
   sampled decreases exponentially with depth. *)
let budget_for_depth ~target ~depth =
  let d = max 0 depth in
  max 1 (target / (1 lsl min d 20))
