(** Natural-language tokenization and string helpers shared by the
    synthesizer, the paraphrase simulator and the semantic parsers. *)

val tokenize : string -> string list
(** Lowercases and splits a sentence into tokens. Punctuation becomes separate
    tokens; apostrophes stay inside words; '@' and '#' stay attached to
    usernames and hashtags; URLs, email addresses, file paths, words with
    internal dots ("notes.txt") and clock times ("8:30") are kept whole so the
    argument identifier and the copy mechanism can treat them as units. *)

val detokenize : string list -> string
(** Joins tokens with single spaces. *)

val words : string -> string list
(** Like {!tokenize} but drops bare punctuation tokens. *)

val ngrams : int -> string list -> string list list
(** [ngrams n toks] lists all contiguous [n]-grams. *)

val bigrams : string list -> string list list

val all_ngrams : int -> string list -> string list
(** All n-grams for n in [1, max], each joined with spaces. *)

val starts_with : prefix:string -> string -> bool
val ends_with : suffix:string -> string -> bool
val contains_substring : sub:string -> string -> bool
val split_on_string : sep:string -> string -> string list

val match_sub : string list -> string list -> (string list * string list) option
(** [match_sub toks sub] finds the first occurrence of the token sub-sequence
    [sub] in [toks], returning the tokens before and after it. [None] when
    absent or when [sub] is empty. *)

val is_atomic_chunk : string -> bool
(** Whether a whitespace-delimited chunk must survive tokenization whole
    (URL, email address, path, dotted word, clock time). *)
