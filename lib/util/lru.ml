(* Generic LRU cache: hashtable + intrusive doubly-linked recency list.
   O(1) find/add/evict. Single-domain use only (see the .mli). *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* towards MRU *)
  mutable next : 'a node option;  (* towards LRU *)
}

type 'a t = {
  cap : int;
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (* MRU *)
  mutable tail : 'a node option;  (* LRU *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int; entries : int }

let create ~capacity =
  { cap = capacity;
    tbl = Hashtbl.create (max 16 capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0 }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let is_head t n = match t.head with Some h -> h == n | None -> false

let touch t n =
  if not (is_head t n) then begin
    unlink t n;
    push_front t n
  end

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some n ->
      t.hits <- t.hits + 1;
      touch t n;
      Some n.value
  | None ->
      t.misses <- t.misses + 1;
      None

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl n.key;
      t.evictions <- t.evictions + 1

let add t key value =
  if t.cap > 0 then
    match Hashtbl.find_opt t.tbl key with
    | Some n ->
        n.value <- value;
        touch t n
    | None ->
        let n = { key; value; prev = None; next = None } in
        push_front t n;
        Hashtbl.replace t.tbl key n;
        if Hashtbl.length t.tbl > t.cap then evict_lru t

let mem t key = Hashtbl.mem t.tbl key
let length t = Hashtbl.length t.tbl
let capacity t = t.cap

let stats (t : _ t) =
  { hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    entries = Hashtbl.length t.tbl }

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None

let keys_mru t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.head
