(** A minimal JSON emitter for machine-readable benchmark and metrics
    artifacts ([BENCH_*.json]). Emission only — nothing in the toolkit needs
    to parse JSON back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Renders with [indent] spaces per level (default 2). Non-finite floats
    become [null]. *)

val to_string_compact : t -> string
(** Renders on a single line with no whitespace — the framing-safe form for
    JSONL streams, where each value must occupy exactly one line. *)

val float_repr : float -> string
(** The shortest decimal representation that parses back to exactly the
    same float ([null] for non-finite values) — lossless for full-precision
    quantities like nanosecond latency sums. *)

val escape : string -> string
(** JSON string-body escaping: quotes, backslashes, and all control
    characters below [0x20]. *)

val write_file : string -> t -> unit
(** Writes [to_string] plus a trailing newline. *)
