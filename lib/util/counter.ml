(* Multiset of strings; used for vocabulary statistics, alignment counts and
   n-gram language models. *)

type t = { tbl : (string, float) Hashtbl.t; mutable total : float }

let create () = { tbl = Hashtbl.create 64; total = 0.0 }

let add ?(weight = 1.0) t key =
  let cur = try Hashtbl.find t.tbl key with Not_found -> 0.0 in
  Hashtbl.replace t.tbl key (cur +. weight);
  t.total <- t.total +. weight

let count t key = try Hashtbl.find t.tbl key with Not_found -> 0.0

let mem t key = Hashtbl.mem t.tbl key
let total t = t.total
let distinct t = Hashtbl.length t.tbl

let iter f t = Hashtbl.iter f t.tbl

let to_list t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl []

let top n t =
  let items = to_list t in
  let sorted = List.sort (fun (k1, v1) (k2, v2) ->
    match compare v2 v1 with 0 -> compare k1 k2 | c -> c) items
  in
  List.filteri (fun i _ -> i < n) sorted

(* Probability with add-alpha smoothing over a known vocabulary size. *)
let prob ?(alpha = 0.0) ?(vocab = 0) t key =
  (count t key +. alpha) /. (t.total +. (alpha *. float_of_int vocab))
