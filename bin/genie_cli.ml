(* The genie command-line tool: synthesize data, simulate paraphrasing, train
   and evaluate a parser, translate sentences, and execute ThingTalk programs
   on the mock runtime. *)

open Cmdliner
open Genie_thingtalk

let setup () =
  let lib = Genie_thingpedia.Thingpedia.core_library () in
  let prims = Genie_thingpedia.Thingpedia.core_templates () in
  let rules = Genie_templates.Rules_thingtalk.rules lib in
  (lib, prims, rules)

(* --- stats ------------------------------------------------------------------ *)

let stats_cmd =
  let run () =
    let lib, prims, rules = setup () in
    Printf.printf "Thingpedia: %s\n" (Genie_thingpedia.Thingpedia.stats lib);
    Printf.printf "primitive templates: %d\n" (List.length prims);
    Printf.printf "construct templates: %d\n" (List.length rules);
    let full = Genie_thingpedia.Thingpedia.full_library () in
    Printf.printf "with Spotify skill: %s\n" (Genie_thingpedia.Thingpedia.stats full)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Show skill-library and template statistics")
    Term.(const run $ const ())

(* --- cheatsheet ----------------------------------------------------------------- *)

(* The paper's discovery mechanism: users scan a cheatsheet of phrases for a
   random sample of skills (section 5.1). *)
let cheatsheet_cmd =
  let skills = Arg.(value & opt int 15 & info [ "skills" ] ~doc:"Skills to sample") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Random seed") in
  let run skills seed =
    let lib, prims, _ = setup () in
    let rng = Genie_util.Rng.create seed in
    let classes = Genie_util.Rng.sample rng skills lib.Schema.Library.classes in
    List.iter
      (fun (c : Schema.cls) ->
        Printf.printf "== %s (%s)\n" c.Schema.c_name c.Schema.c_doc;
        List.iter
          (fun (f : Schema.func) ->
            let phrase =
              List.find_opt
                (fun (t : Genie_thingpedia.Prim.t) ->
                  Genie_thingtalk.Ast.Fn.equal t.Genie_thingpedia.Prim.fn (Schema.fn_ref f))
                prims
            in
            match phrase with
            | Some t ->
                Printf.printf "   %-10s %s\n"
                  (match f.Schema.f_kind with
                  | Schema.Query _ -> "[query]"
                  | Schema.Action -> "[action]")
                  t.Genie_thingpedia.Prim.utterance
            | None -> ())
          c.Schema.c_functions)
      classes
  in
  Cmd.v
    (Cmd.info "cheatsheet" ~doc:"Print a cheatsheet of phrases for a sample of skills")
    Term.(const run $ skills $ seed)

(* --- synthesize --------------------------------------------------------------- *)

let synthesize_cmd =
  let count =
    Arg.(value & opt int 20 & info [ "n" ] ~doc:"Number of sentences to print")
  in
  let target =
    Arg.(value & opt int 100 & info [ "target" ] ~doc:"Target derivations per rule")
  in
  let depth = Arg.(value & opt int 5 & info [ "depth" ] ~doc:"Maximum derivation depth") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed") in
  let workers =
    Arg.(value & opt string "0"
         & info [ "workers" ]
             ~doc:"Comma-separated worker counts (0 = sequential). The corpus \
                   must be byte-identical across all of them (exit 3 \
                   otherwise).")
  in
  let faults =
    Arg.(value & opt string ""
         & info [ "faults" ]
             ~doc:"Seeded shard fault schedule, e.g. \
                   'seed=7,crash=0.1,drop=0.05'. Crashed shards are retried \
                   deterministically; the corpus must be unchanged.")
  in
  let trace =
    Arg.(value & opt string ""
         & info [ "trace" ]
             ~doc:"Write the first configuration's span stream to this JSONL \
                   file, plus per-configuration structural trace digests to \
                   FILE.digest. Synthesis traces are strict: digests must \
                   agree across worker counts even under faults (exit 3 \
                   otherwise).")
  in
  let digest_dir =
    Arg.(value & opt string ""
         & info [ "digest-dir" ]
             ~doc:"Write one synth_d<K>.digest file per depth (the golden \
                   corpus digest format under test/golden/) to this \
                   directory.")
  in
  let spill_dir =
    Arg.(value & opt string ""
         & info [ "spill-dir" ]
             ~doc:"Run the streaming expansion pipeline: shards spill sorted \
                   runs into this directory and an external k-way merge \
                   writes DIR/corpus.shard. The disk corpus digest must be \
                   byte-identical to the in-memory path at every worker \
                   count (exit 3 otherwise).")
  in
  let spill_threshold =
    Arg.(value & opt int 512
         & info [ "spill-threshold" ]
             ~doc:"Records buffered per shard before a sorted run is flushed \
                   to disk (0 = unbounded, one run per shard).")
  in
  let expand =
    Arg.(value & opt float 1.0
         & info [ "expand" ]
             ~doc:"Parameter-expansion scale: multiplies the paper's \
                   per-example expansion multipliers, growing the corpus \
                   10-100x for paper-scale runs.")
  in
  let run n target depth seed workers_csv faults trace digest_dir spill_dir
      spill_threshold expand =
    let lib, prims, rules = setup () in
    let g =
      Genie_templates.Grammar.create lib ~prims ~rules
        ~rng:(Genie_util.Rng.create seed) ()
    in
    let cfg =
      { Genie_synthesis.Engine.default_config with
        seed;
        target_per_rule = target;
        max_depth = depth }
    in
    let fault =
      if faults = "" then Genie_conc.Fault.none
      else
        match Genie_conc.Fault.of_string faults with
        | Ok f -> f
        | Error e ->
            Printf.eprintf "bad --faults spec: %s\n" e;
            exit 2
    in
    if Genie_conc.Fault.active fault then
      Printf.printf "fault schedule: %s\n" (Genie_conc.Fault.to_string fault);
    let worker_counts =
      match
        List.filter_map int_of_string_opt
          (Genie_util.Tok.split_on_string ~sep:"," workers_csv)
      with
      | [] -> [ 0 ]
      | ws -> ws
    in
    let corpus_key ds =
      String.concat "\n" (List.map Genie_templates.Derivation.sort_key ds)
    in
    let runs =
      List.map
        (fun w ->
          let tracer =
            if trace = "" then Genie_observe.Tracer.disabled
            else Genie_observe.Tracer.create ~seed ~capacity:65536 ~slots:1 ()
          in
          let ds, stats =
            Genie_synthesis.Engine.synthesize_derivations_stats ~tracer
              ~workers:w ~fault g cfg
          in
          let dt = stats.Genie_synthesis.Engine.total_ns /. 1e9 in
          Printf.printf
            "workers=%-3s pairs=%d shards=%d retries=%d cache=%d/%d \
             merge=%.1f%% %.2fs\n%!"
            (if w <= 1 then "seq" else string_of_int w)
            (List.length ds) stats.Genie_synthesis.Engine.shards
            stats.Genie_synthesis.Engine.shard_retries
            stats.Genie_synthesis.Engine.cache_hits
            (stats.Genie_synthesis.Engine.cache_hits
            + stats.Genie_synthesis.Engine.cache_misses)
            (100.
            *. stats.Genie_synthesis.Engine.merge_ns
            /. Float.max 1.0 stats.Genie_synthesis.Engine.total_ns)
            dt;
          (w, ds, Genie_observe.Tracer.spans tracer))
        worker_counts
    in
    let _, first, _ = List.hd runs in
    (match runs with
    | (_, ds0, _) :: rest ->
        let k0 = corpus_key ds0 in
        List.iter
          (fun (w, ds, _) ->
            if corpus_key ds <> k0 then begin
              Printf.eprintf
                "corpus at workers=%d differs from workers=%d: determinism \
                 violation\n"
                w
                (let w0, _, _ = List.hd runs in
                 w0);
              exit 3
            end)
          rest
    | [] -> ());
    if digest_dir <> "" then begin
      (try Unix.mkdir digest_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      for d = 1 to cfg.Genie_synthesis.Engine.max_depth do
        let pairs, hex = Genie_synthesis.Engine.corpus_digest first ~depth:d in
        let oc =
          open_out (Filename.concat digest_dir (Printf.sprintf "synth_d%d.digest" d))
        in
        Printf.fprintf oc "depth=%d pairs=%d digest=%s\n" d pairs hex;
        close_out oc
      done;
      Printf.printf "corpus digests written to %s/synth_d*.digest\n" digest_dir
    end;
    if trace <> "" then begin
      let digests =
        List.map
          (fun (w, _, spans) ->
            (w, List.length spans, Genie_observe.Export.digest ~strict:true spans))
          runs
      in
      (match runs with
      | (_, _, spans) :: _ -> Genie_observe.Export.write_jsonl trace spans
      | [] -> ());
      let oc = open_out (trace ^ ".digest") in
      List.iter
        (fun (w, n, d) ->
          Printf.fprintf oc "workers=%s spans=%d strict=true digest=%s\n"
            (if w <= 1 then "seq" else string_of_int w)
            n d)
        digests;
      close_out oc;
      Printf.printf "trace digests in %s.digest\n" trace;
      match digests with
      | (_, _, d0) :: rest when List.exists (fun (_, _, d) -> d <> d0) rest ->
          prerr_endline "trace digests differ across worker counts";
          exit 3
      | _ -> ()
    end;
    if spill_dir <> "" then begin
      let module Stream = Genie_synthesis.Stream in
      let pairs =
        List.filter_map
          (fun (d : Genie_templates.Derivation.t) ->
            match d.Genie_templates.Derivation.value with
            | Genie_templates.Derivation.V_frag (Ast.F_program p) ->
                Some (d.Genie_templates.Derivation.tokens, p)
            | _ -> None)
          first
      in
      let seeds = Stream.seeds_of_pairs pairs in
      let gz =
        Genie_augment.Gazettes.create ~profile:`Extended ()
      in
      let spill = { Stream.dir = spill_dir; threshold = spill_threshold } in
      let mem_records =
        Stream.corpus_records ~workers:(List.hd worker_counts) ~fault
          ~expand_scale:expand lib gz ~seed seeds
      in
      let mem_n, mem_digest = Stream.corpus_digest mem_records in
      Printf.printf "\nstreaming expansion: %d seeds -> %d records (memory \
                     digest %s)\n%!"
        (List.length seeds) mem_n mem_digest;
      List.iter
        (fun w ->
          match
            Stream.corpus_to_spill ~workers:w ~fault ~expand_scale:expand
              ~spill lib gz ~seed seeds
          with
          | Error e ->
              Printf.eprintf "spill pipeline failed at workers=%d: %s\n" w e;
              exit 2
          | Ok st ->
              Printf.printf
                "workers=%-3s spill: records=%d runs=%d spilled=%dKB \
                 digest=%s\n%!"
                (if w <= 1 then "seq" else string_of_int w)
                st.Stream.st_records st.Stream.st_runs
                (st.Stream.st_run_bytes / 1024) st.Stream.st_digest;
              if st.Stream.st_digest <> mem_digest
                 || st.Stream.st_records <> mem_n
              then begin
                Printf.eprintf
                  "disk corpus at workers=%d differs from the in-memory \
                   path: determinism violation\n"
                  w;
                exit 3
              end;
              (match
                 Genie_dataset.Spill.stray_files ~dir:spill_dir
                   ~keep:[ Stream.corpus_file ]
               with
              | [] -> ()
              | leaked ->
                  Printf.eprintf "leaked spill files: %s\n"
                    (String.concat ", " leaked);
                  exit 3))
        worker_counts;
      (* the merged corpus must also read back byte-identically *)
      (match
         Genie_dataset.Reader.digest_file
           (Filename.concat spill_dir Stream.corpus_file)
       with
      | Error e ->
          Printf.eprintf "corpus read-back failed: %s\n" e;
          exit 2
      | Ok (rn, rd) ->
          if rn <> mem_n || rd <> mem_digest then begin
            Printf.eprintf "corpus read-back digest mismatch\n";
            exit 3
          end);
      Printf.printf "disk == memory at every worker count; corpus in %s/%s\n"
        spill_dir Stream.corpus_file
    end;
    Printf.printf "\nsynthesized %d sentences\n\n" (List.length first);
    List.iteri
      (fun i (d : Genie_templates.Derivation.t) ->
        match d.Genie_templates.Derivation.value with
        | Genie_templates.Derivation.V_frag (Ast.F_program p) ->
            if i < n then
              Printf.printf "%s\n  %s\n"
                (String.concat " " d.Genie_templates.Derivation.tokens)
                (Printer.program_to_string p)
        | _ -> ())
      first
  in
  Cmd.v
    (Cmd.info "synthesize"
       ~doc:
         "Synthesize (sentence, ThingTalk) training pairs, optionally sharded \
          over worker domains with deterministic merging")
    Term.(const run $ count $ target $ depth $ seed $ workers $ faults $ trace
          $ digest_dir $ spill_dir $ spill_threshold $ expand)

(* --- paraphrase ---------------------------------------------------------------- *)

let paraphrase_cmd =
  let sentence =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SENTENCE")
  in
  let program = Arg.(required & pos 1 (some string) None & info [] ~docv:"PROGRAM") in
  let n = Arg.(value & opt int 5 & info [ "n" ] ~doc:"Number of paraphrases") in
  let run sentence program n =
    let p = Parser.parse_program program in
    let toks = Genie_util.Tok.tokenize sentence in
    let rng = Genie_util.Rng.create 42 in
    for _ = 1 to n do
      let out = Genie_crowd.Worker.paraphrase (Genie_util.Rng.split rng) toks p in
      let ok = Genie_crowd.Pipeline.valid_paraphrase ~original:toks ~program:p out in
      Printf.printf "%s %s\n" (if ok then "[ok]     " else "[discard]") (String.concat " " out)
    done
  in
  Cmd.v
    (Cmd.info "paraphrase" ~doc:"Simulate crowdsourced paraphrasing of a sentence")
    Term.(const run $ sentence $ program $ n)

(* --- exec ------------------------------------------------------------------------ *)

let exec_cmd =
  let program = Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM") in
  let ticks = Arg.(value & opt int 7 & info [ "ticks" ] ~doc:"Virtual days to simulate") in
  let run program ticks =
    let lib, _, _ = setup () in
    let p = Parser.parse_program program in
    (match Typecheck.check_program lib p with
    | Ok () -> ()
    | Error e -> failwith ("type error: " ^ e));
    let canonical = Canonical.normalize lib p in
    Printf.printf "canonical: %s\n" (Printer.program_to_string canonical);
    let env = Genie_runtime.Exec.create lib in
    let notifications, effects = Genie_runtime.Exec.run ~ticks env canonical in
    Printf.printf "after %d virtual days: %d notifications, %d side effects\n" ticks
      (List.length notifications) (List.length effects);
    List.iteri
      (fun i record ->
        if i < 10 then
          Printf.printf "  notify { %s }\n"
            (String.concat "; "
               (List.map (fun (n, v) -> n ^ " = " ^ Value.to_string v) record)))
      notifications;
    List.iter
      (fun (fn, args) ->
        Printf.printf "  do %s(%s)\n" (Ast.Fn.to_string fn)
          (String.concat ", " (List.map (fun (n, v) -> n ^ " = " ^ Value.to_string v) args)))
      effects
  in
  Cmd.v
    (Cmd.info "exec" ~doc:"Type-check, canonicalize and run a ThingTalk program")
    Term.(const run $ program $ ticks)

(* --- compile --------------------------------------------------------------------- *)

let compile_cmd =
  let file =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"FILE"
             ~doc:"ThingTalk source file; omit (or pass \"-\") to read stdin")
  in
  let check =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Also execute the program on both the compiled path and \
                   the tree-walking interpreter and compare the results \
                   byte for byte (exit 3 on divergence)")
  in
  let ticks =
    Arg.(value & opt int 7 & info [ "ticks" ] ~doc:"Virtual days to simulate under --check")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Runtime RNG seed under --check")
  in
  let run file check ticks seed =
    let lib, _, _ = setup () in
    let source =
      match file with
      | None | Some "-" -> In_channel.input_all stdin
      | Some f -> In_channel.with_open_text f In_channel.input_all
    in
    let p = Parser.parse_program (String.trim source) in
    let c =
      try Genie_runtime.Compile.compile lib p
      with Genie_runtime.Exec.Runtime_error e ->
        Printf.eprintf "%s\n" e;
        exit 2
    in
    print_string (Genie_runtime.Compile.listing c);
    Printf.printf "digest: %s\n" (Genie_runtime.Compile.digest c);
    if check then begin
      let render (notifications, effects) =
        let record r =
          String.concat "; "
            (List.map (fun (n, v) -> n ^ " = " ^ Value.to_string v) r)
        in
        String.concat ""
          (List.map (fun r -> Printf.sprintf "notify { %s }\n" (record r)) notifications
          @ List.map
              (fun (fn, args) ->
                Printf.sprintf "do %s(%s)\n" (Ast.Fn.to_string fn) (record args))
              effects)
      in
      let outcome exec =
        try render (exec ()) with
        | Genie_runtime.Exec.Runtime_error e -> "runtime error: " ^ e ^ "\n"
      in
      let interpreted =
        outcome (fun () ->
            Genie_runtime.Exec.run ~ticks (Genie_runtime.Exec.create ~seed lib) p)
      in
      let compiled =
        outcome (fun () ->
            Genie_runtime.Compile.run ~ticks (Genie_runtime.Exec.create ~seed lib) c)
      in
      if compiled = interpreted then
        Printf.printf "check: compiled = interpreted over %d ticks (seed %d)\n%s" ticks
          seed compiled
      else begin
        Printf.eprintf
          "check FAILED: compiled and interpreted outputs diverge\n\
           --- interpreted ---\n%s--- compiled ---\n%s"
          interpreted compiled;
        exit 3
      end
    end
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Compile a ThingTalk program to flat bytecode and print the \
          listing and its digest; --check also proves compiled execution \
          matches the interpreter")
    Term.(const run $ file $ check $ ticks $ seed)

(* --- parse (train a parser, then translate sentences) ------------------------------ *)

let parse_cmd =
  let sentences =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"SENTENCE")
  in
  let scale =
    Arg.(value & opt float 0.5 & info [ "scale" ] ~doc:"Pipeline scale (training size)")
  in
  let execute = Arg.(value & flag & info [ "exec" ] ~doc:"Also run the parsed program") in
  let run sentences scale execute =
    let lib, prims, rules = setup () in
    Printf.printf "training the semantic parser (scale %.2f)...\n%!" scale;
    let cfg = Genie_core.Config.(scaled scale default) in
    let a = Genie_core.Pipeline.run ~cfg ~lib ~prims ~rules () in
    List.iter
      (fun sentence ->
        let toks = Genie_util.Tok.tokenize sentence in
        match Genie_core.Pipeline.predictor a toks with
        | None -> Printf.printf "%s\n  -> <no parse>\n" sentence
        | Some p ->
            Printf.printf "%s\n  -> %s\n" sentence (Printer.program_to_string p);
            if execute then begin
              let env = Genie_runtime.Exec.create lib in
              let notifications, effects = Genie_runtime.Exec.run ~ticks:3 env p in
              Printf.printf "  (%d notifications, %d side effects)\n"
                (List.length notifications) (List.length effects)
            end)
      sentences
  in
  Cmd.v
    (Cmd.info "parse"
       ~doc:"Train a parser with the Genie pipeline and translate sentences")
    Term.(const run $ sentences $ scale $ execute)

(* --- evaluate -------------------------------------------------------------------- *)

let eval_cmd =
  let scale = Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Pipeline scale") in
  let workers =
    Arg.(value & opt string "0"
         & info [ "workers" ]
             ~doc:"Comma-separated worker counts for the sharded evaluator \
                   (0 = sequential). The accuracy tables must be bitwise \
                   identical across all of them (exit 3 otherwise).")
  in
  let run scale workers_csv =
    let lib, prims, rules = setup () in
    let cfg = Genie_core.Config.(scaled scale default) in
    let a = Genie_core.Pipeline.run ~cfg ~lib ~prims ~rules () in
    let sets =
      Genie_core.Experiments.build_eval_sets ~cfg lib ~prims ~rules
        ~synth_pool:a.Genie_core.Pipeline.synthesized
    in
    let worker_counts =
      match
        List.filter_map int_of_string_opt
          (Genie_util.Tok.split_on_string ~sep:"," workers_csv)
      with
      | [] -> [ 0 ]
      | ws -> ws
    in
    let predict_batch sents =
      List.map
        (fun (p : Genie_parser_model.Aligner.prediction) ->
          p.Genie_parser_model.Aligner.program)
        (Genie_parser_model.Aligner.predict_batch a.Genie_core.Pipeline.model
           sents)
    in
    let strip = List.map Genie_dataset.Example.strip_quotes in
    let show name examples =
      (* one sharded evaluation per worker count; bitwise-equal or exit 3 *)
      let runs =
        List.map
          (fun w ->
            let m =
              Genie_parser_model.Eval.evaluate_sharded ~workers:w a.Genie_core.Pipeline.lib
                predict_batch examples
            in
            (w, m, Genie_parser_model.Eval.digest m))
          worker_counts
      in
      (match runs with
      | (_, _, d0) :: rest ->
          List.iter
            (fun (w, _, d) ->
              if d <> d0 then begin
                Printf.eprintf
                  "%s metrics at workers=%d diverge: determinism violation\n"
                  name w;
                exit 3
              end)
            rest
      | [] -> ());
      let _, m, d = List.hd runs in
      Format.printf "%-12s %a digest=%s@." name
        Genie_parser_model.Eval.pp_metrics m d
    in
    show "paraphrase" a.Genie_core.Pipeline.paraphrase_test;
    show "validation" (strip sets.Genie_core.Experiments.validation);
    show "cheatsheet" (strip sets.Genie_core.Experiments.cheatsheet_test);
    show "ifttt" (strip sets.Genie_core.Experiments.ifttt_test)
  in
  Cmd.v
    (Cmd.info "evaluate"
       ~doc:
         "Run the full pipeline and report accuracy per test set (sharded \
          evaluation, worker-count-invariant)")
    Term.(const run $ scale $ workers)

(* --- train ------------------------------------------------------------------------ *)

(* Mini-batched, deterministically data-parallel seq2seq training: synthesize
   a small corpus, train the MQAN-lite parser once per requested worker
   count, and require the trained weights to be byte-identical across all of
   them (exit 3 otherwise). The weight digest covers every parameter's exact
   float bit pattern, so any nondeterminism in the gradient path shows up. *)
let train_cmd =
  let target =
    Arg.(value & opt int 12 & info [ "target" ] ~doc:"Target derivations per rule")
  in
  let depth = Arg.(value & opt int 2 & info [ "depth" ] ~doc:"Maximum derivation depth") in
  let pairs =
    Arg.(value & opt int 120 & info [ "pairs" ] ~doc:"Training pairs to keep")
  in
  let epochs = Arg.(value & opt int 3 & info [ "epochs" ] ~doc:"Training epochs") in
  let lr = Arg.(value & opt float 5e-3 & info [ "lr" ] ~doc:"Learning rate") in
  let batch =
    Arg.(value & opt int 4 & info [ "batch" ] ~doc:"Examples per optimizer step")
  in
  let micro =
    Arg.(value & opt int 2
         & info [ "micro" ]
             ~doc:"Examples per gradient micro-shard (shards fan out over \
                   workers and reduce in a fixed tree)")
  in
  let workers =
    Arg.(value & opt string "0"
         & info [ "workers" ]
             ~doc:"Comma-separated worker counts (0 = sequential). Trained \
                   weights must be byte-identical across all of them (exit 3 \
                   otherwise).")
  in
  let seed = Arg.(value & opt int 5 & info [ "seed" ] ~doc:"Random seed") in
  let digest_dir =
    Arg.(value & opt string ""
         & info [ "digest-dir" ]
             ~doc:"Write the run's weight digest (the golden format under \
                   test/golden/train.digest) to DIR/train.digest. After \
                   --resume, an existing DIR/train.digest is compared \
                   instead (exit 3 on mismatch).")
  in
  let ckpt =
    Arg.(value & opt string ""
         & info [ "ckpt" ] ~docv:"PATH"
             ~doc:"Write checkpoints to this file (atomically, in place); \
                   a completed run always leaves its terminal checkpoint \
                   here.")
  in
  let ckpt_every =
    Arg.(value & opt int 0
         & info [ "ckpt-every" ] ~docv:"STEPS"
             ~doc:"Checkpoint every N optimizer steps (0 = only at \
                   completion / --stop-after)")
  in
  let ckpt_keep =
    Arg.(value & opt int 0
         & info [ "ckpt-keep" ] ~docv:"K"
             ~doc:"Rotate checkpoints: alongside --ckpt's stable file, keep \
                   the last K step-stamped copies (PATH.stepNNNNNNNN) and \
                   prune older ones. 0 disables rotation (the stable file \
                   is still overwritten in place).")
  in
  let stop_after =
    Arg.(value & opt int 0
         & info [ "stop-after" ] ~docv:"STEPS"
             ~doc:"Simulated kill: checkpoint and stop after N optimizer \
                   steps (0 = run to completion). Implies --ckpt.")
  in
  let resume =
    Arg.(value & opt string ""
         & info [ "resume" ] ~docv:"PATH"
             ~doc:"Resume from a checkpoint. The run's data recipe \
                   (target/depth/pairs/seed) and hyperparameters are taken \
                   from the checkpoint's provenance, overriding the flags.")
  in
  let corpus =
    Arg.(value & opt string ""
         & info [ "corpus" ] ~docv:"FILE"
             ~doc:"Train from a corpus shard written by 'genie synthesize \
                   --spill-dir' instead of synthesizing: the first --pairs \
                   records are streamed off disk through the bounded-readahead \
                   iterator (the rest of the file is never materialized).")
  in
  let run target depth pairs epochs lr batch micro workers_csv seed digest_dir
      ckpt ckpt_every ckpt_keep stop_after resume corpus =
    let resumed =
      if resume = "" then None
      else
        match Genie_checkpoint.Checkpoint.load resume with
        | Error e ->
            Printf.eprintf "cannot resume from %s: %s\n" resume e;
            exit 2
        | Ok ck -> Some ck
    in
    (* A resumed run must rebuild the exact data stream of the original, so
       the provenance recipe wins over the command line. *)
    let prov_int ck key fallback =
      match List.assoc_opt key ck.Genie_checkpoint.Checkpoint.provenance with
      | Some v -> ( match int_of_string_opt v with Some i -> i | None -> fallback)
      | None -> fallback
    in
    let prov_float ck key fallback =
      match List.assoc_opt key ck.Genie_checkpoint.Checkpoint.provenance with
      | Some v -> ( match float_of_string_opt v with Some f -> f | None -> fallback)
      | None -> fallback
    in
    let target, depth, pairs, epochs, lr, batch, micro, seed =
      match resumed with
      | None -> (target, depth, pairs, epochs, lr, batch, micro, seed)
      | Some ck ->
          Printf.printf "resuming from %s (recipe from its provenance)\n" resume;
          ( prov_int ck "target" target,
            prov_int ck "depth" depth,
            prov_int ck "pairs" pairs,
            prov_int ck "epochs" epochs,
            prov_float ck "lr" lr,
            prov_int ck "batch" batch,
            prov_int ck "micro" micro,
            prov_int ck "seed" seed )
    in
    let ckpt = if ckpt = "" && stop_after > 0 then "genie.ckpt" else ckpt in
    let lib, prims, rules = setup () in
    let to_pair (toks, p) =
      let toks = List.filter (fun t -> t <> "\"") toks in
      (toks, Nn_syntax.to_tokens lib (Canonical.normalize lib p))
    in
    let train_pairs =
      if corpus <> "" then begin
        (* iterator-fed: stream the first [pairs] records off the shard
           through the bounded-readahead reader; the tail is never decoded *)
        match Genie_dataset.Reader.open_file corpus with
        | Error e ->
            Printf.eprintf "cannot open corpus %s: %s\n" corpus e;
            exit 2
        | Ok r ->
            let rec take acc k =
              if k = 0 then List.rev acc
              else
                match Genie_dataset.Reader.next r with
                | Ok (Some rc) ->
                    let e = rc.Genie_dataset.Codec.example in
                    take
                      (to_pair
                         ( e.Genie_dataset.Example.tokens,
                           e.Genie_dataset.Example.program )
                      :: acc)
                      (k - 1)
                | Ok None -> List.rev acc
                | Error e ->
                    Printf.eprintf "corpus read failed: %s\n" e;
                    exit 2
            in
            let ps = take [] pairs in
            Genie_dataset.Reader.close r;
            Printf.printf "streamed %d training pairs from %s\n"
              (List.length ps) corpus;
            ps
      end
      else begin
        let g =
          Genie_templates.Grammar.create lib ~prims ~rules
            ~rng:(Genie_util.Rng.create seed) ()
        in
        let data =
          Genie_synthesis.Engine.synthesize g
            { Genie_synthesis.Engine.default_config with
              seed;
              target_per_rule = target;
              max_depth = depth }
        in
        List.filteri (fun i _ -> i < pairs) (List.map to_pair data)
      end
    in
    let src_vocab = Genie_nn.Vocab.of_tokens (List.concat_map fst train_pairs) in
    let tgt_vocab = Genie_nn.Vocab.of_tokens (List.concat_map snd train_pairs) in
    let n = List.length train_pairs in
    Printf.printf
      "training on %d pairs (src vocab %d, tgt vocab %d), %d epochs, batch %d, \
       micro %d\n"
      n
      (Genie_nn.Vocab.size src_vocab)
      (Genie_nn.Vocab.size tgt_vocab)
      epochs batch micro;
    Printf.printf "%d core(s) available to the runtime\n\n"
      (Domain.recommended_domain_count ());
    let worker_counts =
      match
        List.filter_map int_of_string_opt
          (Genie_util.Tok.split_on_string ~sep:"," workers_csv)
      with
      | [] -> [ 0 ]
      | ws -> ws
    in
    let provenance =
      [ ("target", string_of_int target);
        ("depth", string_of_int depth);
        ("pairs", string_of_int pairs);
        ("epochs", string_of_int epochs);
        ("lr", string_of_float lr);
        ("batch", string_of_int batch);
        ("micro", string_of_int micro);
        ("seed", string_of_int seed);
        ("model_kind", "seq2seq") ]
    in
    let stopped = ref false in
    let runs =
      List.map
        (fun w ->
          let model, resume_snapshot =
            match resumed with
            | None ->
                ( Genie_nn.Seq2seq.create
                    ~cfg:
                      { Genie_nn.Seq2seq.default_config with
                        Genie_nn.Seq2seq.seed }
                    ~src_vocab ~tgt_vocab (),
                  None )
            | Some ck -> (
                (* every worker-count run restores afresh from the same
                   file, so all start from identical bits *)
                match Genie_checkpoint.Checkpoint.restore ck with
                | Error e ->
                    Printf.eprintf "cannot restore %s: %s\n" resume e;
                    exit 2
                | Ok m -> (m, Some ck.Genie_checkpoint.Checkpoint.snapshot))
          in
          let checkpoint =
            if ckpt = "" then None
            else if ckpt_keep > 0 then
              Some
                (fun snap ->
                  ignore
                    (Genie_checkpoint.Checkpoint.save_rotating ~provenance
                       ~snapshot:snap ~path:ckpt ~keep:ckpt_keep model))
            else
              Some
                (fun snap ->
                  Genie_checkpoint.Checkpoint.save_model ~provenance
                    ~snapshot:snap ~path:ckpt model)
          in
          let last_loss = ref nan in
          let t0 = Unix.gettimeofday () in
          Genie_nn.Seq2seq.train ~epochs ~lr ~batch ~micro ~workers:w
            ~progress:(fun r -> last_loss := r.Genie_nn.Seq2seq.mean_loss)
            ?resume:resume_snapshot ~checkpoint_every:ckpt_every ?checkpoint
            ?stop_after:(if stop_after > 0 then Some stop_after else None)
            model train_pairs;
          if stop_after > 0 then stopped := true;
          let dt = Unix.gettimeofday () -. t0 in
          let digest = Genie_nn.Seq2seq.weight_digest model in
          Printf.printf
            "workers=%-3s %6.2fs %8.1f ex/s  final loss %.4f  digest=%s\n%!"
            (if w <= 1 then "seq" else string_of_int w)
            dt
            (float_of_int (n * epochs) /. Float.max 1e-9 dt)
            !last_loss digest;
          (w, digest))
        worker_counts
    in
    if !stopped then
      Printf.printf "stopped after %d optimizer steps; checkpoint at %s\n"
        stop_after ckpt;
    (match runs with
    | (w0, d0) :: rest ->
        List.iter
          (fun (w, d) ->
            if d <> d0 then begin
              Printf.eprintf
                "weight digest at workers=%d differs from workers=%d: \
                 determinism violation\n"
                w w0;
              exit 3
            end)
          rest
    | [] -> ());
    if digest_dir <> "" && not !stopped then begin
      (try Unix.mkdir digest_dir 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let _, d0 = List.hd runs in
      let line =
        Printf.sprintf "seed=%d epochs=%d batch=%d micro=%d pairs=%d digest=%s"
          seed epochs batch micro n d0
      in
      let path = Filename.concat digest_dir "train.digest" in
      if resumed <> None && Sys.file_exists path then begin
        (* the golden was written by an uninterrupted run: a resumed run
           landing anywhere else is a checkpoint/resume determinism bug *)
        let ic = open_in path in
        let expected = try input_line ic with End_of_file -> "" in
        close_in ic;
        if String.trim expected <> line then begin
          Printf.eprintf
            "resumed run diverged from %s:\n  expected %s\n  got      %s\n"
            path (String.trim expected) line;
          exit 3
        end;
        Printf.printf "resumed run matches golden digest in %s\n" path
      end
      else begin
        let oc = open_out path in
        Printf.fprintf oc "%s\n" line;
        close_out oc;
        Printf.printf "weight digest written to %s/train.digest\n" digest_dir
      end
    end
  in
  Cmd.v
    (Cmd.info "train"
       ~doc:
         "Train the MQAN-lite parser on synthesized pairs with mini-batched, \
          deterministically data-parallel gradients")
    Term.(
      const run $ target $ depth $ pairs $ epochs $ lr $ batch $ micro $ workers
      $ seed $ digest_dir $ ckpt $ ckpt_every $ ckpt_keep $ stop_after $ resume
      $ corpus)

(* --- serve-bench ----------------------------------------------------------------- *)

(* Online-serving benchmark: train a parser, then replay synthetic Zipfian
   assistant traffic through the Serve subsystem at several worker counts. *)
let serve_bench_cmd =
  let scale =
    Arg.(value & opt float 0.5 & info [ "scale" ] ~doc:"Pipeline scale (training size)")
  in
  let requests =
    Arg.(value & opt int 1000 & info [ "requests" ] ~doc:"Requests to replay")
  in
  let workers =
    Arg.(value & opt string "0,2,4"
         & info [ "workers" ] ~doc:"Comma-separated worker counts (0 = sequential)")
  in
  let cache =
    Arg.(value & opt int 4096 & info [ "cache" ] ~doc:"Parse-cache capacity per worker")
  in
  let zipf =
    Arg.(value & opt float 1.1 & info [ "zipf" ] ~doc:"Zipf exponent of the traffic")
  in
  let execute =
    Arg.(value & flag & info [ "exec" ] ~doc:"Also execute each parsed program")
  in
  let compiled =
    Arg.(value & opt bool true
         & info [ "compiled" ]
             ~doc:"Execute through the bytecode compiler and compiled-program \
                   cache (default); --compiled=false forces the tree-walking \
                   interpreter")
  in
  let seed = Arg.(value & opt int 23 & info [ "seed" ] ~doc:"Traffic random seed") in
  let show =
    Arg.(value & opt int 0 & info [ "show" ] ~doc:"Print the first N responses")
  in
  let faults =
    Arg.(value & opt string ""
         & info [ "faults" ]
             ~doc:"Seeded fault schedule, e.g. \
                   'seed=7,crash=0.05,latency=0.2,latency_ms=5,drop=0.02,sleep=true'. \
                   Empty means no injected faults.")
  in
  let deadline =
    Arg.(value & opt float 0.0
         & info [ "deadline-ms" ]
             ~doc:"Per-request deadline in ms (0 = no deadline)")
  in
  let admission =
    Arg.(value & opt int 0
         & info [ "admission" ]
             ~doc:"Per-worker admission budget per batch (0 = unbounded); \
                   overflow is degraded to cache-only answers or shed")
  in
  let retries =
    Arg.(value & opt int 2 & info [ "retries" ] ~doc:"Max retries per request")
  in
  let trace =
    Arg.(value & opt string ""
         & info [ "trace" ]
             ~doc:"Write the first configuration's span stream to this JSONL \
                   file, plus per-configuration structural trace digests to \
                   FILE.digest. Without faults, digests must agree across \
                   worker counts (exit 3 otherwise).")
  in
  let run scale requests workers_csv cache zipf execute compiled seed show
      faults deadline admission retries trace =
    let lib, prims, rules = setup () in
    Printf.printf "training the semantic parser (scale %.2f)...\n%!" scale;
    let cfg = Genie_core.Config.(scaled scale default) in
    let a = Genie_core.Pipeline.run ~cfg ~lib ~prims ~rules () in
    let corpus =
      List.map
        (fun (toks, _) -> String.concat " " toks)
        (a.Genie_core.Pipeline.synthesized @ a.Genie_core.Pipeline.paraphrases)
    in
    let fault =
      if faults = "" then Genie_serve.Fault.none
      else
        match Genie_serve.Fault.of_string faults with
        | Ok f -> f
        | Error e ->
            Printf.eprintf "bad --faults spec: %s\n" e;
            exit 2
    in
    let deadline_ms = if deadline > 0.0 then Some deadline else None in
    let admission_capacity = if admission > 0 then Some admission else None in
    let reqs =
      Genie_serve.Traffic.generate ~s:zipf ~execute ?deadline_ms
        ~rng:(Genie_util.Rng.create seed) ~utterances:corpus requests
    in
    let distinct =
      List.length
        (List.sort_uniq compare
           (List.map
              (fun (r : Genie_serve.Request.t) -> r.Genie_serve.Request.utterance)
              reqs))
    in
    Printf.printf "replaying %d requests over %d distinct utterances (zipf s=%.2f)\n"
      requests distinct zipf;
    if Genie_serve.Fault.active fault then
      Printf.printf "fault schedule: %s\n" (Genie_serve.Fault.to_string fault);
    Printf.printf "%d core(s) available to the runtime\n\n"
      (Domain.recommended_domain_count ());
    let open Genie_serve.Server in
    Printf.printf "%-10s %10s %10s %10s %10s %10s | %6s %6s %6s %6s %6s\n"
      "workers" "req/s" "hit rate" "p50 ms" "p95 ms" "p99 ms" "ok" "t/o" "shed"
      "retry" "degr";
    let worker_counts =
      List.filter_map int_of_string_opt (Genie_util.Tok.split_on_string ~sep:"," workers_csv)
    in
    let traced = ref [] in
    List.iter
      (fun w ->
        let tracer =
          if trace = "" then Genie_observe.Tracer.disabled
          else
            Genie_observe.Tracer.create ~seed
              ~capacity:(max 4096 (requests * 10))
              ~slots:(max 1 w + 1) ()
        in
        let server =
          of_artifacts ~workers:w ~cache_capacity:cache ~fault
            ?admission_capacity ~max_retries:retries ~tracer ~compiled a
        in
        let responses = run_batch server reqs in
        let s = stats server in
        shutdown server;
        Printf.printf
          "%-10s %10.0f %9.1f%% %10.2f %10.2f %10.2f | %6d %6d %6d %6d %6d\n%!"
          (if w <= 1 then "seq" else string_of_int w)
          s.throughput_rps (100. *. s.hit_rate) s.p50_ms s.p95_ms s.p99_ms s.ok
          s.timeouts s.shed s.retries s.degraded;
        List.iteri
          (fun i r -> if i < show then print_endline ("  " ^ Genie_serve.Response.summary r))
          responses;
        if trace <> "" then
          traced := (w, Genie_observe.Tracer.spans tracer) :: !traced)
      worker_counts;
    if trace <> "" then begin
      let traced = List.rev !traced in
      (* Fault-free traces must be structurally identical across worker
         counts; under faults, retry interleaving may legitimately move
         cache hits around, so digests are reported but not enforced. *)
      let strict = not (Genie_serve.Fault.active fault) in
      let digests =
        List.map
          (fun (w, spans) ->
            (w, List.length spans, Genie_observe.Export.digest ~strict spans))
          traced
      in
      (match traced with
      | (_, spans) :: _ -> Genie_observe.Export.write_jsonl trace spans
      | [] -> ());
      let oc = open_out (trace ^ ".digest") in
      List.iter
        (fun (w, n, d) ->
          Printf.fprintf oc "workers=%s spans=%d strict=%b digest=%s\n"
            (if w <= 1 then "seq" else string_of_int w)
            n strict d)
        digests;
      close_out oc;
      Printf.printf "\ntrace: %d spans -> %s (digests in %s.digest)\n"
        (match traced with (_, spans) :: _ -> List.length spans | [] -> 0)
        trace trace;
      if strict then begin
        match digests with
        | (_, _, d0) :: rest when List.exists (fun (_, _, d) -> d <> d0) rest ->
            prerr_endline
              "trace digests differ across worker counts on a fault-free run";
            exit 3
        | _ -> ()
      end
    end
  in
  Cmd.v
    (Cmd.info "serve-bench"
       ~doc:
         "Benchmark the concurrent serving layer on synthetic assistant \
          traffic, optionally under a seeded fault schedule")
    Term.(
      const run $ scale $ requests $ workers $ cache $ zipf $ execute
      $ compiled $ seed $ show $ faults $ deadline $ admission $ retries
      $ trace)

(* --- serve / loadgen (network serving) -------------------------------------------- *)

(* Both ends of the TCP serving path train the same deterministic pipeline:
   the daemon to get a model to serve, the load generator to know the
   utterance corpus (and, under --selfcheck, the exact responses the server
   must produce). Equal --scale on both sides means equal corpus. *)
let trained_corpus scale =
  let lib, prims, rules = setup () in
  Printf.printf "training the semantic parser (scale %.2f)...\n%!" scale;
  let cfg = Genie_core.Config.(scaled scale default) in
  let a = Genie_core.Pipeline.run ~cfg ~lib ~prims ~rules () in
  let corpus =
    List.map
      (fun (toks, _) -> String.concat " " toks)
      (a.Genie_core.Pipeline.synthesized @ a.Genie_core.Pipeline.paraphrases)
  in
  (a, corpus)

let parse_addr ~what s =
  match String.rindex_opt s ':' with
  | None -> (s, None)
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 -> ((if host = "" then "127.0.0.1" else host), Some p)
      | _ ->
          Printf.eprintf "bad %s address %S (want HOST:PORT)\n" what s;
          exit 2)

let serve_cmd =
  let listen =
    Arg.(value & opt string "127.0.0.1:0"
         & info [ "listen" ] ~docv:"ADDR:PORT"
             ~doc:"Address to bind; port 0 picks an ephemeral port (printed \
                   on startup)")
  in
  let workers =
    Arg.(value & opt int 0
         & info [ "workers" ] ~doc:"Serving pool size (0 = sequential)")
  in
  let window =
    Arg.(value & opt float 2.0
         & info [ "batch-window-ms" ]
             ~doc:"How long the oldest queued request may wait before a \
                   partial micro-batch dispatches (0 = every loop turn)")
  in
  let batch_max =
    Arg.(value & opt int 64 & info [ "batch-max" ] ~doc:"Max requests per micro-batch")
  in
  let queue =
    Arg.(value & opt int 1024
         & info [ "queue" ] ~doc:"Admission queue capacity (beyond it, shed)")
  in
  let cache =
    Arg.(value & opt int 4096 & info [ "cache" ] ~doc:"Parse-cache capacity per worker")
  in
  let scale =
    Arg.(value & opt float 0.3 & info [ "scale" ] ~doc:"Pipeline scale (training size)")
  in
  let model_ckpt =
    Arg.(value & opt string ""
         & info [ "model-ckpt" ] ~docv:"PATH"
             ~doc:"Serve the neural seq2seq model from this checkpoint file \
                   (weights only — Adam moments are skipped) instead of \
                   training the statistical pipeline. SIGHUP / a Reload \
                   frame re-reads the same path and hot-swaps the model in \
                   between micro-batches; a corrupt or truncated file fails \
                   closed (counted in reload_failures, active model keeps \
                   serving).")
  in
  let run listen workers window batch_max queue cache scale model_ckpt =
    let host, port = parse_addr ~what:"--listen" listen in
    let port = Option.value ~default:0 port in
    let lib, prims, rules = setup () in
    let server =
      if model_ckpt <> "" then begin
        Printf.printf "loading model checkpoint %s...\n%!" model_ckpt;
        match Genie_parser_model.Model.load_checkpoint ~lib model_ckpt with
        | Error e ->
            Printf.eprintf "cannot load %s: %s\n" model_ckpt e;
            exit 2
        | Ok model ->
            Printf.printf "model loaded: kind=%s digest=%s\n%!"
              (Genie_parser_model.Model.kind_to_string
                 model.Genie_parser_model.Model.kind)
              model.Genie_parser_model.Model.digest;
            Genie_serve.Server.create ~lib ~model ~workers
              ~cache_capacity:cache ()
      end
      else begin
        Printf.printf "training the semantic parser (scale %.2f)...\n%!" scale;
        let cfg = Genie_core.Config.(scaled scale default) in
        let a = Genie_core.Pipeline.run ~cfg ~lib ~prims ~rules () in
        Genie_serve.Server.of_artifacts ~workers ~cache_capacity:cache a
      end
    in
    (* SIGHUP / Reload frame: re-read the configured checkpoint path and
       hot-swap the model in between micro-batches. Fail-closed: without
       --model-ckpt there is nothing to reload from, and a corrupt or
       truncated file keeps the active model serving — both count as
       reload_failures. *)
    let reload =
      if model_ckpt = "" then None
      else
        Some
          (fun ordinal ->
            Printf.printf "reload #%d: re-reading %s...\n%!" ordinal model_ckpt;
            match Genie_parser_model.Model.load_checkpoint ~lib model_ckpt with
            | Ok model -> Some model
            | Error e ->
                Printf.printf "reload #%d failed (keeping active model): %s\n%!"
                  ordinal e;
                None)
    in
    let on_swap ~old_digest ~new_digest =
      Printf.printf "model swapped: %s -> %s\n%!" old_digest new_digest
    in
    let d =
      Genie_net.Daemon.create ~server ?reload ~on_swap
        { Genie_net.Daemon.default_config with
          host;
          port;
          batch_window_ms = window;
          batch_max;
          queue_capacity = queue }
    in
    Genie_net.Daemon.install_signal_handlers d;
    Printf.printf
      "genie-serve listening on %s:%d (model=%s workers=%d \
       batch-window=%.1fms batch-max=%d queue=%d)\n%!"
      host (Genie_net.Daemon.port d)
      (Genie_serve.Server.model_kind server)
      workers window batch_max queue;
    Genie_net.Daemon.run d;
    Genie_serve.Server.shutdown server;
    let s = Genie_net.Daemon.stats d in
    Printf.printf
      "drained cleanly: %d connections, %d requests, %d responses, %d \
       batches (max %d), shed %d, refused-draining %d, reloads %d\n"
      s.Genie_net.Daemon.connections s.Genie_net.Daemon.requests
      s.Genie_net.Daemon.responses s.Genie_net.Daemon.batches
      s.Genie_net.Daemon.max_batch s.Genie_net.Daemon.shed
      s.Genie_net.Daemon.refused_draining s.Genie_net.Daemon.reloads;
    print_endline
      (Genie_util.Json_lite.to_string (Genie_net.Daemon.stats_json d))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the network serving daemon: a TCP front end that micro-batches \
          framed requests into the concurrent serving pool; SIGTERM drains \
          gracefully, SIGHUP hot-swaps the model re-read from --model-ckpt")
    Term.(
      const run $ listen $ workers $ window $ batch_max $ queue $ cache $ scale
      $ model_ckpt)

let loadgen_cmd =
  let connect =
    Arg.(required & opt (some string) None
         & info [ "connect" ] ~docv:"ADDR:PORT" ~doc:"Daemon address to connect to")
  in
  let users =
    Arg.(value & opt int 4
         & info [ "users" ] ~doc:"Concurrent persistent connections")
  in
  let requests = Arg.(value & opt int 200 & info [ "requests" ] ~doc:"Requests to send") in
  let rate =
    Arg.(value & opt float 0.0
         & info [ "rate" ]
             ~doc:"Open-loop arrival rate in requests/s (0 = maximum pressure)")
  in
  let zipf =
    Arg.(value & opt float 1.1 & info [ "zipf" ] ~doc:"Zipf exponent of the traffic")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Traffic random seed") in
  let execute =
    Arg.(value & flag & info [ "exec" ] ~doc:"Ask the server to execute parsed programs")
  in
  let scale =
    Arg.(value & opt float 0.3
         & info [ "scale" ]
             ~doc:"Pipeline scale — must match the daemon's so both sides \
                   derive the same utterance corpus")
  in
  let out =
    Arg.(value & opt string "" & info [ "out" ] ~doc:"Write the report JSON to this file")
  in
  let selfcheck =
    Arg.(value & flag
         & info [ "selfcheck" ]
             ~doc:"Re-train the identical pipeline locally, replay the same \
                   request stream through an in-process server, and require \
                   the response digests to match (exit 3 otherwise)")
  in
  let drain =
    Arg.(value & flag
         & info [ "drain" ] ~doc:"Send a Drain frame when done (remote SIGTERM)")
  in
  let run connect users requests rate zipf seed execute scale out selfcheck drain
      =
    let host, port = parse_addr ~what:"--connect" connect in
    let port =
      match port with
      | Some p when p > 0 -> p
      | _ ->
          Printf.eprintf "--connect needs an explicit port\n";
          exit 2
    in
    let a, corpus = trained_corpus scale in
    let cfg =
      { Genie_net.Loadgen.default_config with
        host;
        port;
        users;
        requests;
        rate_rps = rate;
        zipf_s = zipf;
        seed;
        execute }
    in
    let r = Genie_net.Loadgen.run ~utterances:corpus cfg in
    let open Genie_net.Loadgen in
    Printf.printf
      "sent %d, received %d (ok %d, overloaded %d, other %d) in %.2fs = %.0f \
       req/s\n"
      r.sent r.received r.ok r.overloaded r.other r.elapsed_s r.rps;
    Printf.printf
      "latency ms: mean %.2f p50 %.2f p95 %.2f p99 %.2f (from scheduled \
       arrival)\n"
      r.latency_mean_ms r.latency_p50_ms r.latency_p95_ms r.latency_p99_ms;
    Printf.printf "queue wait ms: p50 %.2f p95 %.2f p99 %.2f\n"
      r.queue_wait_p50_ms r.queue_wait_p95_ms r.queue_wait_p99_ms;
    Printf.printf "response digest: %s\n" r.digest;
    if out <> "" then begin
      Genie_util.Json_lite.write_file out
        (match Genie_net.Loadgen.report_json r with
        | Genie_util.Json_lite.Obj fields ->
            Genie_util.Json_lite.Obj
              (fields
              @ [ ("server_stats_json", Genie_util.Json_lite.String r.server_stats) ])
        | j -> j);
      Printf.printf "report written to %s\n" out
    end;
    if drain then begin
      let c = Genie_net.Client.connect ~host ~port () in
      Genie_net.Client.drain c;
      Genie_net.Client.close c;
      Printf.printf "drain requested\n"
    end;
    if selfcheck then begin
      if r.overloaded > 0 || r.received < r.sent then begin
        Printf.eprintf
          "selfcheck impossible: %d responses were refused (overloaded) — \
           raise the daemon's --queue or lower the load\n"
          r.overloaded;
        exit 3
      end;
      let reqs = Genie_net.Loadgen.expected_requests ~utterances:corpus cfg in
      let server = Genie_serve.Server.of_artifacts ~workers:0 a in
      let resps = Genie_serve.Server.run_batch ~batched:true server reqs in
      Genie_serve.Server.shutdown server;
      let expected = Genie_net.Codec.digest_of_responses resps in
      if expected <> r.digest then begin
        Printf.eprintf
          "selfcheck FAILED: network digest %s, in-process digest %s\n"
          r.digest expected;
        exit 3
      end
      else Printf.printf "selfcheck ok: digests match (%s)\n" expected
    end
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive a running genie-serve daemon with Zipfian open-loop traffic \
          over persistent connections, and optionally verify the response \
          stream against an in-process replay")
    Term.(
      const run $ connect $ users $ requests $ rate $ zipf $ seed $ execute
      $ scale $ out $ selfcheck $ drain)

(* --- ckpt ------------------------------------------------------------------------- *)

(* Checkpoint utilities. `inspect` renders the header, digests, snapshot and
   provenance of a checkpoint file without restoring the model; a truncated
   or corrupt file exits 2 (the library's strict never-half-loads decode). *)
let ckpt_cmd =
  let inspect_cmd =
    let file =
      Arg.(required & pos 0 (some string) None
           & info [] ~docv:"FILE" ~doc:"Checkpoint file to inspect")
    in
    let run file =
      match Genie_checkpoint.Checkpoint.inspect file with
      | Ok report -> print_string report
      | Error e ->
          Printf.eprintf "ckpt inspect: %s: %s\n" file e;
          exit 2
    in
    Cmd.v
      (Cmd.info "inspect"
         ~doc:
           "Print a checkpoint's version, digests, model config, snapshot \
            fields and provenance table (exit 2 on a truncated or corrupt \
            file)")
      Term.(const run $ file)
  in
  Cmd.group (Cmd.info "ckpt" ~doc:"Checkpoint utilities") [ inspect_cmd ]

(* --- profile ---------------------------------------------------------------------- *)

(* Where does a Genie run spend its time? Trace a seeded synthesis pass and a
   seeded serve batch, then print self-time flame summaries per stage. *)
let profile_cmd =
  let scale =
    Arg.(value & opt float 0.3 & info [ "scale" ] ~doc:"Pipeline scale (training size)")
  in
  let requests =
    Arg.(value & opt int 200 & info [ "requests" ] ~doc:"Requests in the serve phase")
  in
  let workers =
    Arg.(value & opt int 0 & info [ "workers" ] ~doc:"Worker count for the serve phase")
  in
  let seed = Arg.(value & opt int 23 & info [ "seed" ] ~doc:"Random seed") in
  let out =
    Arg.(value & opt string ""
         & info [ "out" ]
             ~doc:"Also write span streams to PREFIX.synth.jsonl and \
                   PREFIX.serve.jsonl")
  in
  let run scale requests workers seed out =
    let lib, prims, rules = setup () in
    let cfg = Genie_core.Config.(scaled scale default) in
    (* phase 1: template synthesis under its own tracer *)
    let g =
      Genie_templates.Grammar.create lib ~prims ~rules
        ~rng:(Genie_util.Rng.create seed) ()
    in
    let synth_tracer = Genie_observe.Tracer.create ~seed ~capacity:65536 () in
    let synth_cfg =
      { Genie_synthesis.Engine.default_config with
        seed;
        target_per_rule = cfg.Genie_core.Config.synth_target;
        max_depth = cfg.Genie_core.Config.synth_depth }
    in
    let data = Genie_synthesis.Engine.synthesize ~tracer:synth_tracer g synth_cfg in
    let synth_spans = Genie_observe.Tracer.spans synth_tracer in
    Printf.printf "== synthesis: %d pairs, %d spans\n"
      (List.length data) (List.length synth_spans);
    Genie_observe.Export.pp_flame Format.std_formatter
      (Genie_observe.Export.flame synth_spans);
    (* phase 2: train, then serve seeded traffic under a second tracer *)
    Printf.printf "\ntraining the semantic parser (scale %.2f)...\n%!" scale;
    let a = Genie_core.Pipeline.run ~cfg ~lib ~prims ~rules () in
    let corpus =
      List.map
        (fun (toks, _) -> String.concat " " toks)
        (a.Genie_core.Pipeline.synthesized @ a.Genie_core.Pipeline.paraphrases)
    in
    let reqs =
      Genie_serve.Traffic.generate ~s:1.1
        ~rng:(Genie_util.Rng.create seed) ~utterances:corpus requests
    in
    let serve_tracer =
      Genie_observe.Tracer.create ~seed
        ~capacity:(max 4096 (requests * 10))
        ~slots:(max 1 workers + 1) ()
    in
    let server =
      Genie_serve.Server.of_artifacts ~workers ~tracer:serve_tracer a
    in
    let _responses = Genie_serve.Server.run_batch server reqs in
    let snap = Genie_serve.Server.metrics_snapshot server in
    Genie_serve.Server.shutdown server;
    let serve_spans = Genie_observe.Tracer.spans serve_tracer in
    Printf.printf "\n== serving: %d requests, %d spans\n" requests
      (List.length serve_spans);
    Genie_observe.Export.pp_flame Format.std_formatter
      (Genie_observe.Export.flame serve_spans);
    Printf.printf "\nstage counters:";
    List.iter
      (fun (name, n) -> Printf.printf " %s=%d" name n)
      snap.Genie_serve.Metrics.stages;
    print_newline ();
    if out <> "" then begin
      Genie_observe.Export.write_jsonl (out ^ ".synth.jsonl") synth_spans;
      Genie_observe.Export.write_jsonl (out ^ ".serve.jsonl") serve_spans;
      Printf.printf "wrote %s.synth.jsonl and %s.serve.jsonl\n" out out
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Trace a seeded synthesis pass and serve batch, and print per-stage \
          self-time flame summaries")
    Term.(const run $ scale $ requests $ workers $ seed $ out)

let () =
  let doc = "Genie: generate natural language semantic parsers for virtual assistants" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "genie" ~doc)
          [ stats_cmd; cheatsheet_cmd; synthesize_cmd; paraphrase_cmd; exec_cmd;
            compile_cmd; parse_cmd; eval_cmd; train_cmd; ckpt_cmd;
            serve_bench_cmd; serve_cmd; loadgen_cmd; profile_cmd ]))
