#!/usr/bin/env python3
"""Splices measured rows from a bench run log into EXPERIMENTS.md.

Usage: python3 docs/fill_experiments.py bench_output.txt EXPERIMENTS.md
"""
import re
import sys


def block(log, start, end):
    m = re.search(re.escape(start) + r"(.*?)" + re.escape(end), log, re.S)
    return m.group(1).strip() if m else None


def main():
    log_path, md_path = sys.argv[1], sys.argv[2]
    log = open(log_path).read()
    md = open(md_path).read()

    tab3 = block(log, "model                      Paraphrase", "(paper: Genie")
    if tab3:
        rows = []
        for line in tab3.splitlines():
            parts = re.split(r"\s{2,}", line.strip())
            if len(parts) == 4:
                rows.append("| %s (measured) | %s | %s | %s |" % tuple(parts))
        md = md.replace("MEASURED_TAB3", "\n".join(rows))

    err = block(log, "tab_error_analysis", "================================================================\ntab_paraphrase")
    if err:
        lines = [l for l in err.splitlines() if "%" in l]
        table = ["| metric | paper | measured |", "|---|---|---|"]
        for l in lines:
            m = re.match(r"(.+?)\s{2,}([\d.]+)%\s+\(paper: (.+)\)", l.strip())
            if m:
                table.append("| %s | %s | %s |" % (m.group(1).strip(), m.group(3), m.group(2)))
        md = md.replace("MEASURED_ERR", "\n".join(table))

    lim = block(log, "tab_paraphrase_limitation", "================================================================\nfig9")
    if lim:
        lines = [l for l in lim.splitlines() if "%" in l and "paper" in l]
        table = ["| test | paper | measured |", "|---|---|---|"]
        for l in lines:
            m = re.match(r"(.+?)\s{2,}([\d.]+)%\s+\(paper: (.+)\)", l.strip())
            if m:
                table.append("| %s | %s | %s |" % (m.group(1).strip(), m.group(3), m.group(2)))
        md = md.replace("MEASURED_LIM", "\n".join(table))

    for name, key_b, key_g in [
        ("Spotify", "MEASURED_SP_B", "MEASURED_SP_G"),
        ("TACL", "MEASURED_TACL_B", "MEASURED_TACL_G"),
        ("TT+A", "MEASURED_AGG_B", "MEASURED_AGG_G"),
    ]:
        m = re.search(re.escape(name) + r"\s+baseline\s+([\d.]+ ±\s*[\d.]+)\s+genie\s+([\d.]+ ±\s*[\d.]+)", log)
        if m:
            md = md.replace(key_b, m.group(1)).replace(key_g, m.group(2))

    mq = block(log, "bench_mqan_small", "================================================================\ntiming")
    if mq:
        lines = [l for l in mq.splitlines() if "perplexity" in l or "exact-match" in l]
        md = md.replace("MEASURED_MQAN", "\n".join("    " + l.strip() for l in lines))

    open(md_path, "w").write(md)
    print("spliced")


if __name__ == "__main__":
    main()
