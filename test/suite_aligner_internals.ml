(* Unit tests for the Aligner's exposed internals: association scores,
   skeleton scoring cues, span scoring features, program shuffling, and the
   compositional decoder. *)

open Genie_thingtalk
open Genie_parser_model

let lib = Genie_thingpedia.Thingpedia.core_library ()
let parse = Parser.parse_program

let mk sentence src =
  Genie_dataset.Example.make ~id:0 ~tokens:(Genie_util.Tok.tokenize sentence)
    ~program:(parse src) ~source:Genie_dataset.Example.Synthesized ()

let model =
  lazy
    (Aligner.train lib
       (List.concat
          (List.init 5 (fun i ->
               let who = List.nth [ "alice"; "bob"; "carol"; "dave"; "eve" ] i in
               [ mk "get a cat picture" "now => @com.thecatapi.get() => notify;";
                 mk
                   (Printf.sprintf "emails from %s" who)
                   (Printf.sprintf
                      "now => (@com.gmail.inbox()) filter sender_name == \"%s\" => notify;"
                      who);
                 mk "when i receive an email , turn on the lights"
                   "monitor (@com.gmail.inbox()) => \
                    @io.home-assistant.light.set_power(power = enum:on);" ]))))

let test_cond_score_discriminates () =
  let t = Lazy.force model in
  let cat = Aligner.cond_score t "@com.thecatapi.get" "cat" in
  let gmail = Aligner.cond_score t "@com.gmail.inbox" "cat" in
  Alcotest.(check bool)
    (Printf.sprintf "cat predicts the cat api (%.2f vs %.2f)" cat gmail)
    true (cat > gmail);
  Alcotest.(check bool) "bounded" true (cat <= 1.0 && cat >= 0.0)

let test_best_explainer () =
  let t = Lazy.force model in
  (* the best explanation of "cat" anywhere is at least the cat api's *)
  Alcotest.(check bool) "explainer dominates" true
    (Aligner.best_explainer t "cat" >= Aligner.cond_score t "@com.thecatapi.get" "cat")

let test_atom_weights () =
  Alcotest.(check bool) "functions dominate" true
    (Aligner.atom_weight "@com.gmail.inbox" > Aligner.atom_weight "param:sender_name");
  Alcotest.(check bool) "stream markers matter" true
    (Aligner.atom_weight "monitor" > Aligner.atom_weight "join")

let test_shuffle_program_preserves_semantics () =
  let p =
    parse
      "now => @com.gmail.send_email(message = \"m\", subject = \"s\", to = \"a@b.com\");"
  in
  let rng = Genie_util.Rng.create 5 in
  let shuffled = Aligner.shuffle_program rng p in
  Alcotest.(check string) "canonically equal"
    (Canonical.canonical_string lib p)
    (Canonical.canonical_string lib shuffled)

let test_candidate_spans_exclude_slots () =
  let spans = Aligner.candidate_spans [ "set"; "to"; "NUMBER_0"; "volume" ] in
  Alcotest.(check bool) "no span contains a named constant" true
    (List.for_all (fun (_, span) -> not (List.mem "NUMBER_0" span)) spans)

let test_compose_candidates_typecheck () =
  let t = Lazy.force model in
  let grams =
    Aligner.sentence_ngrams (Genie_util.Tok.tokenize "when i receive an email get a cat picture")
  in
  let cache = Hashtbl.create 64 in
  let composed = Aligner.compose_candidates t cache grams in
  Alcotest.(check bool) "composition produced candidates" true (composed <> []);
  List.iter
    (fun (e : Aligner.skeleton_entry) ->
      match Skeleton.fill lib e.Aligner.skeleton [] with
      | Some p -> Alcotest.(check bool) "composed candidate type-checks" true (Typecheck.well_typed lib p)
      | None -> Alcotest.fail "composed skeleton does not fill")
    composed

let test_compose_reaches_unseen_combo () =
  (* the training data never pairs gmail monitoring with the cat api as a
     query, yet composition can build it *)
  let t = Lazy.force model in
  let grams =
    Aligner.sentence_ngrams (Genie_util.Tok.tokenize "when i receive an email get a cat picture")
  in
  let cache = Hashtbl.create 64 in
  let composed = Aligner.compose_candidates t cache grams in
  let target =
    Canonical.canonical_string lib
      (parse "monitor (@com.gmail.inbox()) => @com.thecatapi.get() => notify;")
  in
  Alcotest.(check bool) "unseen combination reachable" true
    (List.exists
       (fun (e : Aligner.skeleton_entry) ->
         match Skeleton.fill lib e.Aligner.skeleton [] with
         | Some p -> Canonical.canonical_string lib p = target
         | None -> false)
       composed)

let test_span_score_features () =
  let t = Lazy.force model in
  let cue _ = 0.0 in
  let score ?(before = None) ?(after = None) span =
    Aligner.span_score t ~param:"sender_name" ~pool_opt:(Some "person_name") ~cue ~before
      ~after span
  in
  (* a known person name from the gazette beats arbitrary words *)
  Alcotest.(check bool) "gazette member preferred" true
    (score [ "james"; "smith" ] > score [ "random"; "words" ]);
  (* the parameter-name anchor boosts a span *)
  Alcotest.(check bool) "anchor bonus" true
    (score ~before:(Some "sender_name") [ "james"; "smith" ]
    > score ~before:(Some "the") [ "james"; "smith" ])

let test_predict_scores_ordered () =
  let t = Lazy.force model in
  let p = Aligner.predict t (Genie_util.Tok.tokenize "get a cat picture") in
  Alcotest.(check bool) "prediction carries a finite score" true
    (p.Aligner.score > neg_infinity);
  Alcotest.(check bool) "nn tokens non-empty" true (p.Aligner.nn_tokens <> [])

let test_pipeline_combo_key () =
  let p = parse "monitor (@com.gmail.inbox()) => @com.thecatapi.get() => notify;" in
  Alcotest.(check string) "sorted function set"
    "@com.gmail.inbox+@com.thecatapi.get"
    (Genie_core.Pipeline.combo_key p)

let test_config_scaled () =
  let c = Genie_core.Config.scaled 0.5 Genie_core.Config.default in
  Alcotest.(check int) "synth target halves"
    (Genie_core.Config.default.Genie_core.Config.synth_target / 2)
    c.Genie_core.Config.synth_target;
  let tiny = Genie_core.Config.scaled 0.0001 Genie_core.Config.default in
  Alcotest.(check bool) "never zero" true (tiny.Genie_core.Config.synth_target >= 1)

let suite =
  [ Alcotest.test_case "cond score discriminates" `Quick test_cond_score_discriminates;
    Alcotest.test_case "best explainer dominates" `Quick test_best_explainer;
    Alcotest.test_case "atom weights" `Quick test_atom_weights;
    Alcotest.test_case "shuffle preserves semantics" `Quick
      test_shuffle_program_preserves_semantics;
    Alcotest.test_case "spans exclude named constants" `Quick
      test_candidate_spans_exclude_slots;
    Alcotest.test_case "composed candidates type-check" `Quick
      test_compose_candidates_typecheck;
    Alcotest.test_case "composition reaches unseen combos" `Quick
      test_compose_reaches_unseen_combo;
    Alcotest.test_case "span score features" `Quick test_span_score_features;
    Alcotest.test_case "prediction fields" `Quick test_predict_scores_ordered;
    Alcotest.test_case "pipeline combo key" `Quick test_pipeline_combo_key;
    Alcotest.test_case "config scaling" `Quick test_config_scaled ]
