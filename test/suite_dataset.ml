(* Tests for dataset handling: argument identification (section 2.1) and the
   Fig. 7 statistics. *)

open Genie_thingtalk

let lib = Genie_thingpedia.Thingpedia.core_library ()
let parse = Parser.parse_program

let norm s = Genie_dataset.Argument_id.normalize (Genie_util.Tok.tokenize s)

let test_numbers () =
  let r = norm "set the volume to 42" in
  Alcotest.(check (list string)) "slotted"
    [ "set"; "the"; "volume"; "to"; "NUMBER_0" ]
    r.Genie_dataset.Argument_id.tokens;
  Alcotest.(check bool) "value recorded" true
    (List.assoc "NUMBER_0" r.Genie_dataset.Argument_id.entities = Value.Number 42.0)

let test_multiple_numbers () =
  let r = norm "a random number between 3 and 10" in
  Alcotest.(check bool) "two slots" true
    (List.mem "NUMBER_0" r.Genie_dataset.Argument_id.tokens
    && List.mem "NUMBER_1" r.Genie_dataset.Argument_id.tokens)

let test_repeated_number_shares_slot () =
  let r = norm "between 5 and 5" in
  Alcotest.(check int) "one slot for equal values" 1
    (List.length r.Genie_dataset.Argument_id.entities)

let test_times () =
  let r = norm "every day at 8:30" in
  Alcotest.(check bool) "time slot" true (List.mem "TIME_0" r.Genie_dataset.Argument_id.tokens);
  Alcotest.(check bool) "time value" true
    (List.assoc "TIME_0" r.Genie_dataset.Argument_id.entities = Value.Time (8, 30))

let test_dates () =
  let r = norm "files modified after the beginning of the week" in
  Alcotest.(check bool) "date slot" true (List.mem "DATE_0" r.Genie_dataset.Argument_id.tokens);
  Alcotest.(check bool) "date value" true
    (List.assoc "DATE_0" r.Genie_dataset.Argument_id.entities
    = Value.Date (Value.D_start_of "week"));
  let r2 = norm "events before 6/22/2019" in
  Alcotest.(check bool) "absolute date" true
    (match List.assoc_opt "DATE_0" r2.Genie_dataset.Argument_id.entities with
    | Some (Value.Date (Value.D_absolute { year = 2019; month = 6; day = 22 })) -> true
    | _ -> false)

let test_strings_not_slotted () =
  (* free-form strings stay as words so they can be copied token by token *)
  let r = norm "tweet hello world" in
  Alcotest.(check (list string)) "kept as words" [ "tweet"; "hello"; "world" ]
    r.Genie_dataset.Argument_id.tokens

let test_stats_classification () =
  let classify src = Genie_dataset.Stats.classify (parse src) in
  Alcotest.(check bool) "primitive" true
    (classify "now => @com.gmail.inbox() => notify;" = `Primitive);
  Alcotest.(check bool) "primitive + filter" true
    (classify "now => (@com.gmail.inbox()) filter is_important == true => notify;"
    = `Primitive_filters);
  Alcotest.(check bool) "compound" true
    (classify "monitor (@com.gmail.inbox()) => @io.home-assistant.light.color_loop();"
    = `Compound);
  Alcotest.(check bool) "compound + passing" true
    (classify "monitor (@com.gmail.inbox()) => @com.facebook.post(status = snippet);"
    = `Compound_passing);
  Alcotest.(check bool) "compound + filter" true
    (classify
       "monitor ((@com.gmail.inbox()) filter is_important == true) => \
        @io.home-assistant.light.color_loop();"
    = `Compound_filters)

let test_characteristics_sum_to_one () =
  let programs =
    List.map parse
      [ "now => @com.gmail.inbox() => notify;";
        "now => (@com.gmail.inbox()) filter is_important == true => notify;";
        "monitor (@com.gmail.inbox()) => @com.facebook.post(status = snippet);";
        "monitor (@com.gmail.inbox()) => @io.home-assistant.light.color_loop();" ]
  in
  let c = Genie_dataset.Stats.characteristics programs in
  let total =
    c.Genie_dataset.Stats.primitive +. c.Genie_dataset.Stats.primitive_with_filters
    +. c.Genie_dataset.Stats.compound
    +. c.Genie_dataset.Stats.compound_with_param_passing
    +. c.Genie_dataset.Stats.compound_with_filters
  in
  Alcotest.(check (float 1e-9)) "fractions sum to 1" 1.0 total

let test_paraphrase_novelty () =
  let pairs =
    [ ([ "get"; "my"; "emails" ], [ "fetch"; "my"; "mail" ]);
      ([ "a"; "b" ], [ "a"; "b" ]) ]
  in
  let words, bigrams = Genie_dataset.Stats.paraphrase_novelty pairs in
  (* first pair: 2/3 new words; second: 0 -> average 1/3 *)
  Alcotest.(check (float 1e-6)) "new words" (1.0 /. 3.0) words;
  Alcotest.(check bool) "new bigrams measured" true (bigrams > 0.0)

let test_distinct_programs_uses_canonical () =
  let a = parse "now => @com.bbc.get_news() join @com.nytimes.get_front_page() => notify;" in
  let b = parse "now => @com.nytimes.get_front_page() join @com.bbc.get_news() => notify;" in
  Alcotest.(check int) "commuted joins counted once" 1
    (Genie_dataset.Stats.distinct_programs lib [ a; b ])

let test_strip_quotes () =
  let e =
    Genie_dataset.Example.make ~id:1
      ~tokens:[ "tweet"; "\""; "hi"; "\"" ]
      ~program:(parse "now => @com.twitter.post(status = \"hi\");")
      ~source:Genie_dataset.Example.Paraphrase ()
  in
  Alcotest.(check (list string)) "quotes removed" [ "tweet"; "hi" ]
    (Genie_dataset.Example.strip_quotes e).Genie_dataset.Example.tokens

let suite =
  [ Alcotest.test_case "numbers slotted" `Quick test_numbers;
    Alcotest.test_case "multiple numbers" `Quick test_multiple_numbers;
    Alcotest.test_case "repeated number shares slot" `Quick test_repeated_number_shares_slot;
    Alcotest.test_case "times slotted" `Quick test_times;
    Alcotest.test_case "dates slotted" `Quick test_dates;
    Alcotest.test_case "strings stay as words" `Quick test_strings_not_slotted;
    Alcotest.test_case "fig7 classification" `Quick test_stats_classification;
    Alcotest.test_case "characteristics sum to 1" `Quick test_characteristics_sum_to_one;
    Alcotest.test_case "paraphrase novelty" `Quick test_paraphrase_novelty;
    Alcotest.test_case "distinct programs canonical" `Quick
      test_distinct_programs_uses_canonical;
    Alcotest.test_case "strip quotes" `Quick test_strip_quotes ]
