(* Tests for the paraphrase crowdsourcing pipeline (section 3.2): sentence
   selection, the worker simulator, validation heuristics, batch files. *)

open Genie_thingtalk

let lib = Genie_thingpedia.Thingpedia.core_library ()
let parse = Parser.parse_program

let tweet_program = parse "now => @com.twitter.post(status = \"hello world\");"
let tweet_tokens = Genie_util.Tok.tokenize "post \"hello world\" on twitter"

let compound_program =
  parse "monitor (@com.gmail.inbox()) => @com.twitter.post(status = \"new mail\");"

let compound_tokens =
  Genie_util.Tok.tokenize "when i receive an email , post \"new mail\" on twitter"

let test_worker_deterministic () =
  let p1 =
    Genie_crowd.Worker.paraphrase (Genie_util.Rng.create 3) tweet_tokens tweet_program
  in
  let p2 =
    Genie_crowd.Worker.paraphrase (Genie_util.Rng.create 3) tweet_tokens tweet_program
  in
  Alcotest.(check (list string)) "deterministic" p1 p2

let test_worker_preserves_parameters_without_errors () =
  let style = { Genie_crowd.Worker.default_style with error_p = 0.0 } in
  let rng = Genie_util.Rng.create 5 in
  for _ = 1 to 50 do
    let out =
      Genie_crowd.Worker.paraphrase ~style (Genie_util.Rng.split rng) tweet_tokens
        tweet_program
    in
    Alcotest.(check bool) "parameter words kept" true
      (Genie_util.Tok.match_sub out [ "hello"; "world" ] <> None)
  done

let test_worker_produces_variety () =
  let rng = Genie_util.Rng.create 7 in
  let outs =
    List.init 30 (fun _ ->
        Genie_crowd.Worker.paraphrase (Genie_util.Rng.split rng) compound_tokens
          compound_program)
  in
  Alcotest.(check bool) "several distinct paraphrases" true
    (List.length (List.sort_uniq compare outs) > 5)

let test_clause_reorder () =
  (* a when-first sentence can be reordered to action-first *)
  let style =
    { Genie_crowd.Worker.reorder_p = 1.0;
      error_p = 0.0;
      lazy_p = 0.0;
      synonym_rate = 0.0;
      drop_politeness_p = 0.0 }
  in
  let out =
    Genie_crowd.Worker.paraphrase ~style (Genie_util.Rng.create 1) compound_tokens
      compound_program
  in
  match out with
  | "post" :: _ -> ()
  | _ -> Alcotest.fail ("expected reorder, got: " ^ String.concat " " out)

let test_validation_catches_dropped_parameter () =
  let answer = Genie_util.Tok.tokenize "post something on twitter" in
  Alcotest.(check bool) "dropped parameter rejected" false
    (Genie_crowd.Pipeline.valid_paraphrase ~original:tweet_tokens ~program:tweet_program
       answer)

let test_validation_catches_truncation () =
  let answer = [ "post" ] in
  Alcotest.(check bool) "truncation rejected" false
    (Genie_crowd.Pipeline.valid_paraphrase ~original:compound_tokens
       ~program:compound_program answer)

let test_validation_accepts_good_answer () =
  let answer = Genie_util.Tok.tokenize "tweet \"hello world\" for me" in
  Alcotest.(check bool) "good answer accepted" true
    (Genie_crowd.Pipeline.valid_paraphrase ~original:tweet_tokens ~program:tweet_program
       answer)

let synthesized =
  lazy
    (let prims = Genie_thingpedia.Thingpedia.core_templates () in
     let rules = Genie_templates.Rules_thingtalk.rules lib in
     let g =
       Genie_templates.Grammar.create lib ~prims ~rules ~rng:(Genie_util.Rng.create 81) ()
     in
     Genie_synthesis.Engine.synthesize g
       { Genie_synthesis.Engine.default_config with
         seed = 81;
         target_per_rule = 80;
         max_depth = 4 })

let test_selection_covers_primitives () =
  let cfg =
    { Genie_crowd.Pipeline.default_selection with
      Genie_crowd.Pipeline.primitive_per_function = 1;
      compound_budget = 50 }
  in
  let selected = Genie_crowd.Pipeline.select cfg (Lazy.force synthesized) in
  let fns_selected =
    List.sort_uniq compare
      (List.concat_map
         (fun (_, p) ->
           if Ast.is_primitive p then List.map Ast.Fn.to_string (Ast.program_functions p)
           else [])
         selected)
  in
  let fns_available =
    List.sort_uniq compare
      (List.concat_map
         (fun (_, p) ->
           if Ast.is_primitive p then List.map Ast.Fn.to_string (Ast.program_functions p)
           else [])
         (Lazy.force synthesized))
  in
  Alcotest.(check bool)
    (Printf.sprintf "primitive coverage %d/%d" (List.length fns_selected)
       (List.length fns_available))
    true
    (List.length fns_selected >= List.length fns_available * 9 / 10)

let test_selection_respects_budget () =
  let cfg =
    { Genie_crowd.Pipeline.default_selection with
      Genie_crowd.Pipeline.primitive_per_function = 1;
      compound_budget = 25 }
  in
  let selected = Genie_crowd.Pipeline.select cfg (Lazy.force synthesized) in
  let compounds = List.filter (fun (_, p) -> not (Ast.is_primitive p)) selected in
  Alcotest.(check bool) "budget respected" true (List.length compounds <= 25)

let test_collect_filters_errors () =
  let selected = Genie_util.Rng.sample (Genie_util.Rng.create 2) 80 (Lazy.force synthesized) in
  let r = Genie_crowd.Pipeline.collect ~seed:9 ~num_workers:20 selected in
  Alcotest.(check bool) "some answers rejected" true (r.Genie_crowd.Pipeline.rejected > 0);
  Alcotest.(check int) "accounting adds up" r.Genie_crowd.Pipeline.collected
    (List.length r.Genie_crowd.Pipeline.accepted + r.Genie_crowd.Pipeline.rejected);
  (* all accepted paraphrases still carry their parameters *)
  List.iter
    (fun (toks, p) ->
      Alcotest.(check bool) "accepted paraphrase is valid" true
        (Genie_crowd.Pipeline.valid_paraphrase ~original:toks ~program:p toks))
    r.Genie_crowd.Pipeline.accepted

let test_paraphrases_add_vocabulary () =
  (* the mechanism the paper measures: paraphrases introduce new words over
     the synthesized wording (38% new words per paraphrase in the paper) *)
  let selected = Genie_util.Rng.sample (Genie_util.Rng.create 4) 100 (Lazy.force synthesized) in
  let r = Genie_crowd.Pipeline.collect ~seed:10 ~num_workers:20 selected in
  let synth_vocab = Hashtbl.create 256 in
  List.iter (fun (toks, _) -> List.iter (fun w -> Hashtbl.replace synth_vocab w ()) toks)
    (Lazy.force synthesized);
  let new_words =
    List.exists
      (fun (toks, _) -> List.exists (fun w -> not (Hashtbl.mem synth_vocab w)) toks)
      r.Genie_crowd.Pipeline.accepted
  in
  Alcotest.(check bool) "paraphrases introduce new vocabulary" true new_words

let test_batch_csv () =
  let csv =
    Genie_crowd.Pipeline.batch_csv ~workers_per_sentence:2
      [ (tweet_tokens, tweet_program) ]
  in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 2 worker rows" 3 (List.length lines);
  Alcotest.(check string) "header" "hit_id,worker_slot,sentence,program" (List.hd lines)

let suite =
  [ Alcotest.test_case "worker deterministic" `Quick test_worker_deterministic;
    Alcotest.test_case "worker preserves parameters" `Quick
      test_worker_preserves_parameters_without_errors;
    Alcotest.test_case "worker variety" `Quick test_worker_produces_variety;
    Alcotest.test_case "clause reorder" `Quick test_clause_reorder;
    Alcotest.test_case "validation: dropped parameter" `Quick
      test_validation_catches_dropped_parameter;
    Alcotest.test_case "validation: truncation" `Quick test_validation_catches_truncation;
    Alcotest.test_case "validation: good answer" `Quick test_validation_accepts_good_answer;
    Alcotest.test_case "selection covers primitives" `Quick test_selection_covers_primitives;
    Alcotest.test_case "selection respects budget" `Quick test_selection_respects_budget;
    Alcotest.test_case "collection filters errors" `Quick test_collect_filters_errors;
    Alcotest.test_case "paraphrases add vocabulary" `Quick test_paraphrases_add_vocabulary;
    Alcotest.test_case "mturk batch csv" `Quick test_batch_csv ]
