(* Tests for the ThingTalk compiler (lib/runtime/compile.ml): snapshot
   goldens pinning lexed/typechecked/compiled/executed output for every
   Thingpedia function class, a differential QCheck suite asserting
   compiled execution is byte-identical to the tree-walking interpreter
   over hundreds of seeded well-typed programs, cache transparency, and
   compile-cache LRU boundary behavior.

   Snapshot layout (docs/compilation.md): test/snapshot/<case>/program.tt
   is the checked-in source, the test writes <case>.out in the build
   directory and compares it against the checked-in
   test/snapshot/<case>/intended. Regold with COMPILE_REGOLD=1, which
   rewrites the intended files (and materializes missing cases) in the
   source tree. *)

open Genie_thingtalk
module Exec = Genie_runtime.Exec
module Compile = Genie_runtime.Compile
module Compile_cache = Genie_runtime.Compile_cache
module Rng = Genie_util.Rng

let lib = lazy (Genie_thingpedia.Thingpedia.full_library ())

(* --- rendering execution outcomes ----------------------------------------- *)

let record_to_string (r : Exec.record) =
  "{" ^ String.concat "; " (List.map (fun (n, v) -> n ^ " = " ^ Value.to_string v) r) ^ "}"

let render_result (notifications, side_effects) =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "notifications: %d\n" (List.length notifications));
  List.iter (fun r -> Buffer.add_string b ("  " ^ record_to_string r ^ "\n")) notifications;
  Buffer.add_string b (Printf.sprintf "side_effects: %d\n" (List.length side_effects));
  List.iter
    (fun (fn, r) ->
      Buffer.add_string b ("  " ^ Ast.Fn.to_string fn ^ " " ^ record_to_string r ^ "\n"))
    side_effects;
  Buffer.contents b

(* Byte-comparable outcome of one execution, errors included: the
   differential contract covers the failure paths too. *)
let outcome f =
  match f () with
  | res -> "ok\n" ^ render_result res
  | exception Exec.Runtime_error e -> "runtime error: " ^ e ^ "\n"

let interp_outcome ?(seed = 42) ?(ticks = 1) p () =
  let env = Exec.create ~seed (Lazy.force lib) in
  Exec.run ~ticks env p

let compiled_outcome ?(seed = 42) ?(ticks = 1) p () =
  let env = Exec.create ~seed (Lazy.force lib) in
  Compile.exec_compiled ~ticks env p

let check_differential label ?seed ?ticks p =
  let i = outcome (interp_outcome ?seed ?ticks p) in
  let c = outcome (compiled_outcome ?seed ?ticks p) in
  if i <> c then
    Alcotest.failf "%s: compiled execution diverged from interpreter\n  program: %s\n  interpreted:\n%s\n  compiled:\n%s"
      label (Printer.program_to_string p) i c

(* --- snapshot cases --------------------------------------------------------- *)

let snapshot_ticks = 5

(* A deterministic representative program for one Thingpedia class: its
   first query (all parameters filled) feeding its first action, or
   whichever half exists. *)
let class_program (c : Schema.cls) : Ast.program =
  let queries = List.filter Schema.is_query c.Schema.c_functions in
  let actions = List.filter Schema.is_action c.Schema.c_functions in
  let inv f = Suite_dsl.inv_of ~fill_optional:true f in
  match (queries, actions) with
  | q :: _, a :: _ ->
      { Ast.stream = Ast.S_now; query = Some (Ast.Q_invoke (inv q)); action = Ast.A_invoke (inv a) }
  | q :: _, [] ->
      { Ast.stream = Ast.S_now; query = Some (Ast.Q_invoke (inv q)); action = Ast.A_notify }
  | [], a :: _ -> { Ast.stream = Ast.S_now; query = None; action = Ast.A_invoke (inv a) }
  | [], [] -> { Ast.stream = Ast.S_now; query = None; action = Ast.A_notify }

(* Hand-picked feature cases covering each construct the compiler lowers. *)
let feature_cases =
  [ ("feature_filter", "now => (@com.gmail.inbox()) filter is_important == true => notify;");
    ("feature_param_passing", "now => @com.gmail.inbox() => @com.facebook.post(status = snippet);");
    ("feature_join", "now => @com.gmail.inbox() join @com.bbc.get_news() => notify;");
    ("feature_monitor", "monitor (@com.gmail.inbox()) => notify;");
    ( "feature_edge",
      "edge (monitor (@com.nest.thermostat.get_temperature())) on value < 40C => notify;" );
    ("feature_timer", "timer base = $now interval = 2day => notify;");
    ("feature_attimer", "attimer time = time(8,0) => notify;");
    ("feature_agg_count", "now => agg count of (@com.gmail.inbox()) => notify;");
    ("feature_agg_sum", "now => agg sum file_size of (@com.dropbox.list_folder()) => notify;");
    ( "feature_external_pred",
      "now => (@com.gmail.inbox()) filter @org.thingpedia.weather.current(location = \
       location(\"paris\")) { temperature > 0C } => notify;" ) ]

let class_cases () =
  List.map
    (fun (c : Schema.cls) ->
      ("class_" ^ c.Schema.c_name, Printer.program_to_string (class_program c) ^ "\n"))
    (Lazy.force lib).Schema.Library.classes

let all_cases () =
  class_cases () @ List.map (fun (n, text) -> (n, text ^ "\n")) feature_cases

(* The snapshot content: every stage of the pipeline for one program. *)
let snapshot_of_source (source : string) : string =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b s) fmt in
  add "== source ==\n%s" source;
  (match Lexer.tokenize (String.trim source) with
  | tokens ->
      add "== tokens ==\n";
      List.iter (fun t -> add "%s\n" (Lexer.token_to_string t)) tokens
  | exception Lexer.Error e -> add "== tokens ==\nlex error: %s\n" e);
  (match Parser.parse_program (String.trim source) with
  | exception e -> add "== parse ==\nparse error: %s\n" (Printexc.to_string e)
  | p ->
      add "== typecheck ==\n";
      (match Typecheck.check_program (Lazy.force lib) p with
      | Ok () -> add "ok\n"
      | Error e -> add "error: %s\n" e);
      add "== bytecode ==\n";
      (match Compile.compile (Lazy.force lib) p with
      | c -> add "digest: %s\n%s" (Compile.digest c) (Compile.listing c)
      | exception Exec.Runtime_error e -> add "compile error: %s\n" e);
      add "== exec ticks=%d seed=42 ==\n" snapshot_ticks;
      let i = outcome (interp_outcome ~ticks:snapshot_ticks p) in
      let c = outcome (compiled_outcome ~ticks:snapshot_ticks p) in
      if i <> c then
        add "DIVERGED\ninterpreted:\n%scompiled:\n%s" i c
      else add "%s" i);
  Buffer.contents b

(* Locate the checked-in snapshot tree (dune copies it next to the test
   binary) and, for regolding, the same tree in the source directory. *)
let snapshot_dir () =
  if Sys.file_exists "snapshot" then "snapshot"
  else if Sys.file_exists "test/snapshot" then "test/snapshot"
  else Alcotest.fail "snapshot directory not found (run from dune)"

let source_snapshot_dir () =
  (* the source test directory, reached from wherever dune ran us
     (_build/default/test or _build/default) — identified by containing
     this very file *)
  let candidates = [ "../../../test"; "../../test"; "test" ] in
  Option.map
    (fun d -> Filename.concat d "snapshot")
    (List.find_opt (fun d -> Sys.file_exists (Filename.concat d "suite_compile.ml")) candidates)

let regold = Sys.getenv_opt "COMPILE_REGOLD" <> None

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let rec mkdirs d =
  if not (Sys.file_exists d) then begin
    mkdirs (Filename.dirname d);
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let regold_case name ~source ~out =
  match source_snapshot_dir () with
  | None -> Printf.printf "COMPILE_REGOLD: cannot locate source tree for %s\n%!" name
  | Some root ->
      let dir = Filename.concat root name in
      mkdirs dir;
      write_file (Filename.concat dir "program.tt") source;
      write_file (Filename.concat dir "intended") out;
      Printf.printf "COMPILE_REGOLD: wrote %s\n%!" dir

let test_snapshots () =
  let cases = all_cases () in
  Alcotest.(check bool) "covers every Thingpedia class" true
    (List.length (class_cases ()) >= Schema.Library.num_classes (Lazy.force lib));
  let failures = ref [] in
  List.iter
    (fun (name, default_source) ->
      let dir = Filename.concat (snapshot_dir ()) name in
      let tt = Filename.concat dir "program.tt" in
      (* the checked-in source wins; the built-in text only seeds regold *)
      let source = if Sys.file_exists tt then read_file tt else default_source in
      let out = snapshot_of_source source in
      (* always materialize <case>.out next to the test binary for diffing *)
      (try
         let outdir = Filename.concat (snapshot_dir ()) name in
         if Sys.file_exists outdir then write_file (Filename.concat outdir "out") out
       with _ -> ());
      if regold then regold_case name ~source ~out
      else
        let intended_path = Filename.concat dir "intended" in
        if not (Sys.file_exists intended_path) then
          failures := Printf.sprintf "%s: missing %s (run with COMPILE_REGOLD=1)" name intended_path :: !failures
        else
          let intended = read_file intended_path in
          if intended <> out then
            failures := Printf.sprintf "%s: out differs from intended" name :: !failures)
    cases;
  (match !failures with
  | [] -> ()
  | fs -> Alcotest.failf "snapshot mismatches:\n  %s" (String.concat "\n  " (List.rev fs)))

(* every snapshot case must agree between interpreter and compiled code;
   test_snapshots would embed DIVERGED in the out file, but assert directly
   too so the failure message is readable *)
let test_snapshot_cases_differential () =
  List.iter
    (fun (name, source) ->
      match Parser.parse_program (String.trim source) with
      | exception _ -> ()
      | p -> check_differential name ~ticks:snapshot_ticks p)
    (all_cases ())

(* --- differential QCheck suite --------------------------------------------- *)

let differential_count = 250

let test_differential_random () =
  for seed = 1 to differential_count do
    let rng = Rng.create seed in
    let p = Suite_dsl.gen_program rng in
    let ticks = 1 + (seed mod 7) in
    check_differential (Printf.sprintf "seed %d" seed) ~seed:(1000 + seed) ~ticks p
  done

(* the same env executed repeatedly accumulates notifications/side effects;
   compiled runs must mutate identically *)
let test_differential_accumulation () =
  let p = Parser.parse_program "monitor (@com.gmail.inbox()) => notify;" in
  let l = Lazy.force lib in
  let env_i = Exec.create ~seed:7 l in
  let env_c = Exec.create ~seed:7 l in
  let c = Compile.compile l p in
  for round = 1 to 3 do
    let i = render_result (Exec.run ~ticks:4 env_i p) in
    let cr = render_result (Compile.run ~ticks:4 env_c c) in
    Alcotest.(check string) (Printf.sprintf "round %d accumulated state" round) i cr
  done

(* custom services registered on the env override the pre-resolved default *)
let test_differential_custom_service () =
  let p = Parser.parse_program "now => @com.gmail.inbox() => notify;" in
  let l = Lazy.force lib in
  let fn = Ast.Fn.make "com.gmail" "inbox" in
  let service =
    { Exec.generate =
        (fun ~now:_ ~rng:_ ~args:_ -> [ [ ("subject", Value.String "custom row") ] ]) }
  in
  let env_i = Exec.create ~seed:3 l in
  let env_c = Exec.create ~seed:3 l in
  Exec.register_service env_i fn service;
  Exec.register_service env_c fn service;
  let i = render_result (Exec.run env_i p) in
  let c = render_result (Compile.exec_compiled env_c p) in
  Alcotest.(check string) "custom service honored" i c;
  Alcotest.(check bool) "custom rows visible" true
    (Genie_util.Tok.contains_substring ~sub:"custom row" i)

let test_error_parity_ill_typed () =
  let p = Parser.parse_program "now => @com.twitter.post();" in
  let i = outcome (interp_outcome p) in
  let c = outcome (compiled_outcome p) in
  Alcotest.(check string) "ill-typed error byte-identical" i c;
  Alcotest.(check bool) "is an error" true
    (Genie_util.Tok.starts_with ~prefix:"runtime error: ill-typed program" i)

(* --- compiled-program cache ------------------------------------------------- *)

let test_cache_transparency () =
  let l = Lazy.force lib in
  let cache = Compile_cache.create ~capacity:8 in
  let hits = ref 0 in
  for seed = 1 to 40 do
    let rng = Rng.create seed in
    let p = Suite_dsl.gen_program rng in
    let key = Canonical.canonical_string l p in
    let cold = Compile.compile l p in
    (* distinct random programs can share a canonical form, so the first
       lookup may legitimately hit an earlier seed's entry *)
    let dup = Compile_cache.mem cache key in
    (match Compile_cache.find_or_compile cache l ~key p with
    | `Hit _ ->
        incr hits;
        if not dup then Alcotest.failf "seed %d: first lookup hit a fresh key" seed
    | `Miss _ -> if dup then Alcotest.failf "seed %d: cached key missed" seed);
    let via_cache =
      match Compile_cache.find_or_compile cache l ~key p with
      | `Hit c ->
          incr hits;
          c
      | `Miss _ -> Alcotest.failf "seed %d: second lookup missed" seed
    in
    let run c () =
      let env = Exec.create ~seed:(200 + seed) l in
      Compile.run ~ticks:3 env c
    in
    Alcotest.(check string)
      (Printf.sprintf "seed %d: hit result = cold compile result" seed)
      (outcome (run cold)) (outcome (run via_cache));
    Alcotest.(check string)
      (Printf.sprintf "seed %d: digests agree" seed)
      (Compile.digest cold) (Compile.digest via_cache)
  done;
  let stats = Compile_cache.stats cache in
  Alcotest.(check int) "hits" !hits stats.Compile_cache.hits;
  Alcotest.(check bool) "every round hit at least once" true (!hits >= 40);
  Alcotest.(check bool) "evictions happened at capacity 8" true (stats.Compile_cache.evictions > 0);
  Alcotest.(check int) "entries at capacity" 8 stats.Compile_cache.entries

(* LRU boundary behavior, mirroring suite_serve's parse-cache tests *)
let dummy_compiled =
  lazy (Compile.compile (Lazy.force lib) (Parser.parse_program "now => @com.gmail.inbox() => notify;"))

let test_cache_lru_eviction_order () =
  let c = Compile_cache.create ~capacity:2 in
  let v = Lazy.force dummy_compiled in
  Compile_cache.add c "a" v;
  Compile_cache.add c "b" v;
  ignore (Compile_cache.find c "a");
  Compile_cache.add c "c" v;
  (* "b" was least recently used *)
  Alcotest.(check bool) "a survives" true (Compile_cache.mem c "a");
  Alcotest.(check bool) "b evicted" false (Compile_cache.mem c "b");
  Alcotest.(check bool) "c present" true (Compile_cache.mem c "c");
  Alcotest.(check (list string)) "mru order" [ "c"; "a" ] (Compile_cache.keys_mru c)

let test_cache_capacity_one () =
  let c = Compile_cache.create ~capacity:1 in
  let v = Lazy.force dummy_compiled in
  Compile_cache.add c "a" v;
  Compile_cache.add c "b" v;
  Alcotest.(check int) "length" 1 (Compile_cache.length c);
  Alcotest.(check bool) "b present" true (Compile_cache.mem c "b");
  Alcotest.(check bool) "a evicted" false (Compile_cache.mem c "a")

let test_cache_capacity_zero () =
  let c = Compile_cache.create ~capacity:0 in
  let v = Lazy.force dummy_compiled in
  Compile_cache.add c "a" v;
  Alcotest.(check int) "nothing stored" 0 (Compile_cache.length c);
  Alcotest.(check bool) "find misses" true (Compile_cache.find c "a" = None);
  let stats = Compile_cache.stats c in
  Alcotest.(check int) "all misses" 1 stats.Compile_cache.misses

let test_cache_negative_capacity () =
  let c = Compile_cache.create ~capacity:(-3) in
  let v = Lazy.force dummy_compiled in
  Compile_cache.add c "a" v;
  Alcotest.(check int) "nothing stored" 0 (Compile_cache.length c);
  Alcotest.(check bool) "find misses" true (Compile_cache.find c "a" = None)

(* the generic LRU behind both caches: re-adding refreshes recency, clear
   drops entries but keeps lifetime counters *)
let test_lru_readd_refreshes () =
  let module Lru = Genie_util.Lru in
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "a" 10;
  (* "a" is now most recent; adding "c" must evict "b" *)
  Lru.add c "c" 3;
  Alcotest.(check (option int)) "a replaced" (Some 10) (Lru.find c "a");
  Alcotest.(check bool) "b evicted" false (Lru.mem c "b");
  Alcotest.(check int) "no duplicate entry for a" 2 (Lru.length c)

let test_lru_clear_keeps_counters () =
  let module Lru = Genie_util.Lru in
  let c = Lru.create ~capacity:4 in
  Lru.add c "a" 1;
  ignore (Lru.find c "a");
  ignore (Lru.find c "missing");
  Lru.clear c;
  Alcotest.(check int) "empty after clear" 0 (Lru.length c);
  Alcotest.(check (list string)) "no keys" [] (Lru.keys_mru c);
  let s = Lru.stats c in
  Alcotest.(check int) "hits survive clear" 1 s.Lru.hits;
  Alcotest.(check int) "misses survive clear" 1 s.Lru.misses;
  Alcotest.(check int) "entries reported zero" 0 s.Lru.entries;
  (* the cache still works after clear *)
  Lru.add c "b" 2;
  Alcotest.(check (option int)) "usable after clear" (Some 2) (Lru.find c "b")

(* --- compiled form ----------------------------------------------------------- *)

let test_listing_digest_deterministic () =
  let l = Lazy.force lib in
  let p = Parser.parse_program "now => (@com.gmail.inbox()) filter is_important == true => notify;" in
  let c1 = Compile.compile l p in
  let c2 = Compile.compile l p in
  Alcotest.(check string) "listing stable" (Compile.listing c1) (Compile.listing c2);
  Alcotest.(check string) "digest stable" (Compile.digest c1) (Compile.digest c2);
  let q = Parser.parse_program "now => @com.gmail.inbox() => notify;" in
  Alcotest.(check bool) "different programs, different digests" true
    (Compile.digest c1 <> Compile.digest (Compile.compile l q));
  Alcotest.(check bool) "listing mentions the filter atom" true
    (Genie_util.Tok.contains_substring ~sub:"is_important" (Compile.listing c1))

let test_digest_format () =
  let l = Lazy.force lib in
  let is_hex ch = (ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f') in
  List.iter
    (fun (name, text) ->
      let d = Compile.digest (Compile.compile l (Parser.parse_program text)) in
      Alcotest.(check int) (name ^ ": 16 chars") 16 (String.length d);
      Alcotest.(check bool) (name ^ ": lowercase hex") true (String.for_all is_hex d))
    feature_cases

let test_source_accessor () =
  let l = Lazy.force lib in
  let p = Parser.parse_program "monitor (@com.gmail.inbox()) => notify;" in
  let c = Compile.compile l p in
  Alcotest.(check string) "source round-trips through the compiled value"
    (Printer.program_to_string p)
    (Printer.program_to_string (Compile.source c))

(* parity must hold at every tick count, zero included (no stream
   advancement at all) *)
let test_differential_tick_sweep () =
  List.iter
    (fun (name, text) ->
      let p = Parser.parse_program text in
      List.iter
        (fun ticks -> check_differential (Printf.sprintf "%s ticks=%d" name ticks) ~ticks p)
        [ 0; 1; 3; 6 ])
    feature_cases

(* one compiled value executed concurrently from several domains: per-run
   stream state is private, so every domain must reproduce the sequential
   outcome byte for byte *)
let test_run_concurrent_domains () =
  let l = Lazy.force lib in
  let p = Parser.parse_program "monitor (@com.gmail.inbox()) => @com.facebook.post(status = snippet);" in
  let c = Compile.compile l p in
  let run seed () =
    let env = Exec.create ~seed l in
    Compile.run ~ticks:4 env c
  in
  let seeds = [ 11; 12; 13; 14 ] in
  let sequential = List.map (fun s -> outcome (run s)) seeds in
  let domains = List.map (fun s -> Domain.spawn (fun () -> outcome (run s))) seeds in
  let concurrent = List.map Domain.join domains in
  List.iteri
    (fun i (s, c) -> Alcotest.(check string) (Printf.sprintf "seed %d" (List.nth seeds i)) s c)
    (List.combine sequential concurrent)

(* different seeds produce different mock data, and parity holds per seed —
   the compiled path threads the RNG exactly like the interpreter *)
let test_seed_sensitivity_parity () =
  (* thecatapi.get is non-monitorable: every call draws a fresh RNG bucket,
     so the rows depend on the env seed *)
  let p = Parser.parse_program "now => @com.thecatapi.get() => notify;" in
  let outcomes =
    List.map
      (fun seed ->
        let i = outcome (interp_outcome ~seed p) in
        let c = outcome (compiled_outcome ~seed p) in
        Alcotest.(check string) (Printf.sprintf "seed %d parity" seed) i c;
        i)
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool) "seeds actually vary the data" true
    (List.length (List.sort_uniq compare outcomes) > 1)

let test_short_circuit_preserved () =
  (* an external predicate draws RNG when evaluated; under && its partner
     decides first, so interpreter and compiled code must agree on whether
     the external ever runs (byte-identity of the RNG stream afterwards) *)
  let texts =
    [ "now => (@com.gmail.inbox()) filter false && @org.thingpedia.weather.current(location = \
       location(\"paris\")) { temperature > 0C } => notify;";
      "now => (@com.gmail.inbox()) filter true || @org.thingpedia.weather.current(location = \
       location(\"paris\")) { temperature > 0C } => notify;";
      "now => (@com.gmail.inbox()) filter is_important == true && @org.thingpedia.weather.current(location = \
       location(\"paris\")) { temperature > 0C } => notify;";
      "now => (@com.gmail.inbox()) filter !(is_important == true) || @org.thingpedia.weather.current(location = \
       location(\"paris\")) { temperature > 0C } => notify;" ]
  in
  List.iter
    (fun t -> check_differential t ~ticks:2 (Parser.parse_program t))
    texts

let suite =
  [ Alcotest.test_case "snapshot goldens (COMPILE_REGOLD=1 to regold)" `Quick test_snapshots;
    Alcotest.test_case "snapshot cases: compiled = interpreted" `Quick
      test_snapshot_cases_differential;
    Alcotest.test_case
      (Printf.sprintf "differential: %d random programs" differential_count)
      `Slow test_differential_random;
    Alcotest.test_case "differential: env accumulation across runs" `Quick
      test_differential_accumulation;
    Alcotest.test_case "differential: custom services honored" `Quick
      test_differential_custom_service;
    Alcotest.test_case "error parity: ill-typed programs" `Quick test_error_parity_ill_typed;
    Alcotest.test_case "cache transparency: hit = cold compile" `Quick test_cache_transparency;
    Alcotest.test_case "compile cache: LRU eviction order" `Quick test_cache_lru_eviction_order;
    Alcotest.test_case "compile cache: capacity one" `Quick test_cache_capacity_one;
    Alcotest.test_case "compile cache: capacity zero disables" `Quick test_cache_capacity_zero;
    Alcotest.test_case "compile cache: negative capacity disables" `Quick
      test_cache_negative_capacity;
    Alcotest.test_case "lru: re-add refreshes recency" `Quick test_lru_readd_refreshes;
    Alcotest.test_case "lru: clear keeps counters" `Quick test_lru_clear_keeps_counters;
    Alcotest.test_case "listing and digest deterministic" `Quick test_listing_digest_deterministic;
    Alcotest.test_case "digest format: 16 lowercase hex" `Quick test_digest_format;
    Alcotest.test_case "source accessor round-trips" `Quick test_source_accessor;
    Alcotest.test_case "differential: tick-count sweep" `Quick test_differential_tick_sweep;
    Alcotest.test_case "concurrent runs from domains" `Quick test_run_concurrent_domains;
    Alcotest.test_case "seed sensitivity with parity" `Quick test_seed_sensitivity_parity;
    Alcotest.test_case "short-circuit order preserved" `Quick test_short_circuit_preserved ]
