(* Tests for the runtime: query evaluation, filters, joins, implicit list
   traversal, monitors, edge filters, timers, aggregation, parameter passing. *)

open Genie_thingtalk

let lib = Genie_thingpedia.Thingpedia.core_library ()
let parse = Parser.parse_program

let run ?(ticks = 1) ?(seed = 42) src =
  let env = Genie_runtime.Exec.create ~seed lib in
  Genie_runtime.Exec.run ~ticks env (parse src)

let test_now_query_notify () =
  let notifications, effects = run "now => @com.gmail.inbox() => notify;" in
  Alcotest.(check int) "list query notifies each row" 3 (List.length notifications);
  Alcotest.(check int) "no side effects" 0 (List.length effects)

let test_single_result_query () =
  let notifications, _ = run "now => @com.dropbox.get_space_usage() => notify;" in
  Alcotest.(check int) "singleton list" 1 (List.length notifications)

let test_action_side_effect () =
  let notifications, effects = run "now => @com.twitter.post(status = \"hi\");" in
  Alcotest.(check int) "no notifications" 0 (List.length notifications);
  match effects with
  | [ (fn, args) ] ->
      Alcotest.(check string) "fn" "@com.twitter.post" (Ast.Fn.to_string fn);
      Alcotest.(check bool) "arg" true (List.assoc "status" args = Value.String "hi")
  | _ -> Alcotest.fail "expected one side effect"

let test_filter_restricts () =
  let all, _ = run "now => @com.gmail.inbox() => notify;" in
  let some, _ =
    run "now => (@com.gmail.inbox()) filter is_important == true => notify;"
  in
  Alcotest.(check bool) "filter is a subset" true (List.length some <= List.length all);
  List.iter
    (fun record ->
      Alcotest.(check bool) "filter holds" true
        (List.assoc "is_important" record = Value.Boolean true))
    some

let test_false_filter_empty () =
  let n, _ = run "now => (@com.gmail.inbox()) filter false => notify;" in
  Alcotest.(check int) "empty" 0 (List.length n)

let test_join_cross_product () =
  let n, _ = run "now => @com.gmail.inbox() join @com.bbc.get_news() => notify;" in
  (* 3 rows x 3 rows *)
  Alcotest.(check int) "cross product" 9 (List.length n)

let test_join_param_passing () =
  let n, _ =
    run
      "now => @com.nytimes.get_front_page() join @com.yandex.translate.translate() on \
       (text = title) => notify;"
  in
  Alcotest.(check bool) "rows produced" true (List.length n > 0);
  List.iter
    (fun record ->
      Alcotest.(check bool) "translation present" true
        (List.mem_assoc "translated_text" record);
      (* the passed input parameter is visible downstream *)
      Alcotest.(check bool) "passed param bound" true (List.mem_assoc "text" record))
    n

let test_action_per_row () =
  let _, effects =
    run "now => @com.gmail.inbox() => @com.facebook.post(status = snippet);"
  in
  (* implicit traversal: one action per query result *)
  Alcotest.(check int) "one action per row" 3 (List.length effects)

let test_monitor_fires_on_change () =
  (* monitorable data changes every 3 virtual days in the mock services *)
  let n, _ = run ~ticks:7 "monitor (@com.gmail.inbox()) => notify;" in
  Alcotest.(check bool) "fires more than once" true (List.length n > 3);
  let n1, _ = run ~ticks:1 "monitor (@com.gmail.inbox()) => notify;" in
  Alcotest.(check int) "first evaluation seeds the stream" 3 (List.length n1)

let test_monitor_no_false_fires () =
  (* within one 3-day bucket the data does not change, so no extra events *)
  let n, _ = run ~ticks:3 "monitor (@com.gmail.inbox()) => notify;" in
  Alcotest.(check int) "no repeat within bucket" 3 (List.length n)

let test_edge_filter_transitions () =
  (* an edge filter fires only on false -> true transitions *)
  let n, _ =
    run ~ticks:40
      "edge (monitor (@com.nest.thermostat.get_temperature())) on value < 40C => notify;"
  in
  let raw, _ =
    run ~ticks:40
      "monitor ((@com.nest.thermostat.get_temperature()) filter value < 40C) => notify;"
  in
  Alcotest.(check bool) "edge fires at most as often as the filter" true
    (List.length n <= List.length raw);
  Alcotest.(check bool) "edge fires at least once over 40 days" true (List.length n >= 1)

let test_timer () =
  let n, _ = run ~ticks:10 "timer base = $now interval = 2day => notify;" in
  Alcotest.(check int) "every other day" 5 (List.length n)

let test_attimer () =
  let n, _ =
    run ~ticks:5 "attimer time = time(8,0) => notify;"
  in
  Alcotest.(check int) "once per day" 5 (List.length n)

let test_aggregation () =
  let n, _ = run "now => agg count of (@com.gmail.inbox()) => notify;" in
  (match n with
  | [ [ ("count", Value.Number c) ] ] -> Alcotest.(check (float 0.01)) "count" 3.0 c
  | _ -> Alcotest.fail "expected count record");
  let n, _ = run "now => agg sum file_size of (@com.dropbox.list_folder()) => notify;" in
  match n with
  | [ [ ("file_size", Value.Number _) ] ] -> ()
  | _ -> Alcotest.fail "expected sum record"

let test_aggregation_avg_vs_sum () =
  let get src =
    match run src with
    | [ [ (_, Value.Number x) ] ], _ -> x
    | _ -> Alcotest.fail "expected aggregate"
  in
  let sum = get "now => agg sum file_size of (@com.dropbox.list_folder()) => notify;" in
  let avg = get "now => agg avg file_size of (@com.dropbox.list_folder()) => notify;" in
  let mx = get "now => agg max file_size of (@com.dropbox.list_folder()) => notify;" in
  let mn = get "now => agg min file_size of (@com.dropbox.list_folder()) => notify;" in
  Alcotest.(check (float 0.01)) "avg = sum / 3" (sum /. 3.0) avg;
  Alcotest.(check bool) "min <= avg <= max" true (mn <= avg && avg <= mx)

let test_param_passing_to_action () =
  let _, effects =
    run
      "now => @com.thecatapi.get() => @com.facebook.post_picture(picture_url = \
       picture_url, caption = \"funny cat\");"
  in
  match effects with
  | [ (_, args) ] -> (
      match List.assoc "picture_url" args with
      | Value.String url ->
          Alcotest.(check bool) "url flowed from query" true
            (Genie_util.Tok.starts_with ~prefix:"https://" url)
      | _ -> Alcotest.fail "expected a url string")
  | _ -> Alcotest.fail "expected one side effect"

let test_external_predicate () =
  let n, _ =
    run
      "now => (@com.gmail.inbox()) filter @org.thingpedia.weather.current(location = \
       location(\"paris\")) { temperature > 0C } => notify;"
  in
  (* the external predicate either holds for all rows or none *)
  Alcotest.(check bool) "all or nothing" true (List.length n = 0 || List.length n = 3)

let test_ill_typed_rejected () =
  match run "now => @com.twitter.post();" with
  | exception Genie_runtime.Exec.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected runtime rejection of ill-typed program"

let test_deterministic () =
  let r1 = run ~seed:9 ~ticks:5 "monitor (@com.gmail.inbox()) => notify;" in
  let r2 = run ~seed:9 ~ticks:5 "monitor (@com.gmail.inbox()) => notify;" in
  Alcotest.(check bool) "same seed, same trace" true (r1 = r2)

let suite =
  [ Alcotest.test_case "now query notify" `Quick test_now_query_notify;
    Alcotest.test_case "single-result query" `Quick test_single_result_query;
    Alcotest.test_case "action side effect" `Quick test_action_side_effect;
    Alcotest.test_case "filter restricts" `Quick test_filter_restricts;
    Alcotest.test_case "false filter" `Quick test_false_filter_empty;
    Alcotest.test_case "join cross product" `Quick test_join_cross_product;
    Alcotest.test_case "join param passing" `Quick test_join_param_passing;
    Alcotest.test_case "implicit traversal" `Quick test_action_per_row;
    Alcotest.test_case "monitor fires on change" `Quick test_monitor_fires_on_change;
    Alcotest.test_case "monitor stable within bucket" `Quick test_monitor_no_false_fires;
    Alcotest.test_case "edge filter transitions" `Quick test_edge_filter_transitions;
    Alcotest.test_case "timer" `Quick test_timer;
    Alcotest.test_case "attimer" `Quick test_attimer;
    Alcotest.test_case "aggregation count/sum" `Quick test_aggregation;
    Alcotest.test_case "aggregation avg/max/min" `Quick test_aggregation_avg_vs_sum;
    Alcotest.test_case "param passing to action" `Quick test_param_passing_to_action;
    Alcotest.test_case "external predicate" `Quick test_external_predicate;
    Alcotest.test_case "ill-typed rejected" `Quick test_ill_typed_rejected;
    Alcotest.test_case "deterministic execution" `Quick test_deterministic ]
