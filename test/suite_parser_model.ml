(* Tests for the semantic parser backend: skeleton extraction and filling, the
   Aligner's training and decoding, and the evaluation metrics. *)

open Genie_thingtalk
open Genie_parser_model

let lib = Genie_thingpedia.Thingpedia.core_library ()
let parse = Parser.parse_program

(* --- skeletons ------------------------------------------------------------------ *)

let test_skeleton_slots () =
  let p = parse "now => @com.twitter.post(status = \"hello world\");" in
  let sk = Skeleton.of_program lib p in
  Alcotest.(check int) "one slot" 1 (List.length sk.Skeleton.slots);
  let s = List.hd sk.Skeleton.slots in
  Alcotest.(check string) "param name" "status" s.Skeleton.param;
  Alcotest.(check bool) "marker in tokens" true (List.mem "SLOT_0" sk.Skeleton.tokens)

let test_skeleton_enum_not_slotted () =
  let p = parse "now => @io.home-assistant.light.set_power(power = enum:on);" in
  let sk = Skeleton.of_program lib p in
  Alcotest.(check int) "enums stay literal" 0 (List.length sk.Skeleton.slots);
  Alcotest.(check bool) "enum token kept" true (List.mem "enum:on" sk.Skeleton.tokens)

let test_skeleton_shared_marker () =
  let p =
    parse
      "now => @com.dropbox.move(old_name = \"a.txt\", new_name = \"a.txt\");"
  in
  let sk = Skeleton.of_program lib p in
  Alcotest.(check int) "equal values share one marker" 1 (List.length sk.Skeleton.slots)

let test_skeleton_fill_roundtrip () =
  let p = parse "now => @com.twitter.post(status = \"hello world\");" in
  let sk = Skeleton.of_program lib p in
  (match Skeleton.fill lib sk [ ("SLOT_0", Value.String "goodbye moon") ] with
  | Some p2 -> (
      match Ast.program_constants p2 with
      | [ ("status", Value.String "goodbye moon") ] -> ()
      | _ -> Alcotest.fail "unexpected fill result")
  | None -> Alcotest.fail "fill failed");
  (* filling with the exemplars reproduces the original *)
  match Skeleton.fill lib sk [] with
  | Some p2 ->
      Alcotest.(check string) "exemplar fill"
        (Canonical.canonical_string lib p)
        (Canonical.canonical_string lib p2)
  | None -> Alcotest.fail "fill failed"

let test_skeleton_atoms () =
  let p =
    parse "monitor ((@com.gmail.inbox()) filter is_important == true) => notify;"
  in
  let atoms = Skeleton.atoms (Skeleton.of_program lib p) in
  Alcotest.(check bool) "function atom" true (List.mem "@com.gmail.inbox" atoms);
  Alcotest.(check bool) "structural atom" true (List.mem "monitor" atoms);
  Alcotest.(check bool) "param atom" true
    (List.exists (Genie_util.Tok.starts_with ~prefix:"param:is_important") atoms)

(* --- aligner on a small controlled dataset ----------------------------------------- *)

let mini_dataset () =
  let mk sentence src =
    Genie_dataset.Example.make ~id:0 ~tokens:(Genie_util.Tok.tokenize sentence)
      ~program:(parse src) ~source:Genie_dataset.Example.Synthesized ()
  in
  (* several sentences per program with varied values *)
  List.concat
    (List.init 6 (fun i ->
         let name = List.nth [ "alice"; "bob"; "carol"; "dan"; "eve"; "mallory" ] i in
         [ mk
             (Printf.sprintf "tweet %s" name)
             (Printf.sprintf "now => @com.twitter.post(status = \"%s\");" name);
           mk
             (Printf.sprintf "show me emails from %s" name)
             (Printf.sprintf
                "now => (@com.gmail.inbox()) filter sender_name == \"%s\" => notify;" name);
           mk "get a cat picture" "now => @com.thecatapi.get() => notify;";
           mk "when i receive an email , get a cat picture"
             "monitor (@com.gmail.inbox()) => @com.thecatapi.get() => notify;" ]))

let model = lazy (Aligner.train lib (mini_dataset ()))

let predict sentence =
  (Aligner.predict (Lazy.force model) (Genie_util.Tok.tokenize sentence)).Aligner.program

let check_parse sentence expected =
  match predict sentence with
  | None -> Alcotest.fail ("no parse for: " ^ sentence)
  | Some p ->
      Alcotest.(check string) sentence
        (Canonical.canonical_string lib (parse expected))
        (Canonical.canonical_string lib p)

let test_aligner_memorized () =
  check_parse "get a cat picture" "now => @com.thecatapi.get() => notify;"

let test_aligner_copies_values () =
  (* "zoe" never appears in training: the copy mechanism must pick it up *)
  check_parse "tweet zoe" "now => @com.twitter.post(status = \"zoe\");"

let test_aligner_filter_value () =
  check_parse "show me emails from zoe"
    "now => (@com.gmail.inbox()) filter sender_name == \"zoe\" => notify;"

let test_aligner_syntax_valid () =
  (* whatever the aligner outputs must be well-typed *)
  List.iter
    (fun s ->
      match predict s with
      | Some p -> Alcotest.(check bool) ("well-typed: " ^ s) true (Typecheck.well_typed lib p)
      | None -> ())
    [ "tweet something"; "emails"; "cat"; "random words entirely" ]

(* --- evaluation metrics --------------------------------------------------------------- *)

let test_eval_metrics () =
  let gold = parse "now => @com.gmail.inbox() => notify;" in
  let examples =
    [ Genie_dataset.Example.make ~id:0 ~tokens:[ "a" ] ~program:gold
        ~source:(Genie_dataset.Example.Evaluation "t") ();
      Genie_dataset.Example.make ~id:1 ~tokens:[ "b" ] ~program:gold
        ~source:(Genie_dataset.Example.Evaluation "t") () ]
  in
  (* a predictor that is right on "a" and wrong (but same function) on "b" *)
  let predictor tokens =
    match tokens with
    | [ "a" ] -> Some gold
    | _ -> Some (parse "now => (@com.gmail.inbox()) filter is_important == true => notify;")
  in
  let m = Eval.evaluate lib predictor examples in
  Alcotest.(check (float 1e-9)) "program accuracy" 0.5 m.Eval.program_accuracy;
  Alcotest.(check (float 1e-9)) "function accuracy" 1.0 m.Eval.function_accuracy;
  Alcotest.(check (float 1e-9)) "syntax ok" 1.0 m.Eval.syntax_ok

let test_eval_alternatives () =
  let gold = parse "now => @com.gmail.inbox() => notify;" in
  let alt = parse "monitor (@com.gmail.inbox()) => notify;" in
  let e =
    Genie_dataset.Example.make ~id:0 ~tokens:[ "x" ] ~program:gold ~alternatives:[ alt ]
      ~source:(Genie_dataset.Example.Evaluation "t") ()
  in
  let m = Eval.evaluate lib (fun _ -> Some alt) [ e ] in
  Alcotest.(check (float 1e-9)) "alternative annotation accepted" 1.0 m.Eval.program_accuracy

let test_mean_half_range () =
  let mean, hr = Eval.mean_half_range [ 0.2; 0.4; 0.3 ] in
  Alcotest.(check (float 1e-9)) "mean" 0.3 mean;
  Alcotest.(check (float 1e-9)) "half range" 0.1 hr

let test_canonicalization_ablation_trains () =
  (* with canonicalization off the aligner still trains and predicts *)
  let cfg = { Aligner.default_config with Aligner.canonicalize = false } in
  let m = Aligner.train ~cfg lib (mini_dataset ()) in
  match (Aligner.predict m (Genie_util.Tok.tokenize "get a cat picture")).Aligner.program with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a prediction"

let test_positional_ablation_trains () =
  let cfg =
    { Aligner.default_config with
      Aligner.options = { Nn_syntax.type_annotations = true; keyword_params = false } }
  in
  let m = Aligner.train ~cfg lib (mini_dataset ()) in
  match (Aligner.predict m (Genie_util.Tok.tokenize "tweet zoe")).Aligner.program with
  | Some p -> Alcotest.(check bool) "well-typed" true (Typecheck.well_typed lib p)
  | None -> Alcotest.fail "expected a prediction"

let test_lm_extends_inventory () =
  (* a program seen only in LM pretraining is still reachable *)
  let lm_prog = parse "monitor (@com.gmail.inbox()) => @com.thecatapi.get() => notify;" in
  let cfg = { Aligner.default_config with Aligner.lm_programs = [ lm_prog ] } in
  let data =
    List.filter
      (fun (e : Genie_dataset.Example.t) ->
        Ast.is_primitive e.Genie_dataset.Example.program)
      (mini_dataset ())
  in
  let m = Aligner.train ~cfg lib data in
  let k = Skeleton.key (Skeleton.of_program lib (Canonical.normalize lib lm_prog)) in
  Alcotest.(check bool) "lm skeleton registered" true (Hashtbl.mem m.Aligner.inventory k)

(* --- batched prediction and evaluation --------------------------------------------- *)

let eval_sentences =
  [ "tweet alice"; "show me emails from bob"; "get a cat picture";
    "when i receive an email , get a cat picture"; "tweet carol";
    "show me emails from mallory"; "tweet alice" (* repeat: shared cache hit *) ]

let test_predict_batch_identical () =
  let m = Lazy.force model in
  let batch = List.map Genie_util.Tok.tokenize eval_sentences in
  let batched = Aligner.predict_batch m batch in
  let mapped = List.map (Aligner.predict m) batch in
  List.iteri
    (fun i ((b : Aligner.prediction), (s : Aligner.prediction)) ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "score %d" i)
        s.Aligner.score b.Aligner.score;
      Alcotest.(check (list string))
        (Printf.sprintf "nn tokens %d" i)
        s.Aligner.nn_tokens b.Aligner.nn_tokens;
      Alcotest.(check (option string))
        (Printf.sprintf "program %d" i)
        (Option.map (Canonical.canonical_string lib) s.Aligner.program)
        (Option.map (Canonical.canonical_string lib) b.Aligner.program))
    (List.combine batched mapped)

let test_evaluate_batched_identical () =
  let m = Lazy.force model in
  let examples =
    List.filteri (fun i _ -> i < 10) (mini_dataset ())
    |> List.mapi (fun i (e : Genie_dataset.Example.t) ->
           { e with Genie_dataset.Example.id = i })
  in
  let seq =
    Eval.evaluate lib (fun toks -> (Aligner.predict m toks).Aligner.program) examples
  in
  let batched =
    Eval.evaluate_batched lib
      (fun batch ->
        List.map
          (fun (p : Aligner.prediction) -> p.Aligner.program)
          (Aligner.predict_batch m batch))
      examples
  in
  Alcotest.(check (float 0.0)) "program accuracy" seq.Eval.program_accuracy
    batched.Eval.program_accuracy;
  Alcotest.(check (float 0.0)) "function accuracy" seq.Eval.function_accuracy
    batched.Eval.function_accuracy;
  Alcotest.(check (float 0.0)) "device accuracy" seq.Eval.device_accuracy
    batched.Eval.device_accuracy;
  Alcotest.(check (float 0.0)) "syntax ok" seq.Eval.syntax_ok batched.Eval.syntax_ok;
  Alcotest.(check int) "n" seq.Eval.n batched.Eval.n

let suite =
  [ Alcotest.test_case "skeleton slots" `Quick test_skeleton_slots;
    Alcotest.test_case "predict_batch = mapped predict" `Quick
      test_predict_batch_identical;
    Alcotest.test_case "evaluate_batched = evaluate" `Quick
      test_evaluate_batched_identical;
    Alcotest.test_case "enums stay literal" `Quick test_skeleton_enum_not_slotted;
    Alcotest.test_case "equal values share markers" `Quick test_skeleton_shared_marker;
    Alcotest.test_case "skeleton fill roundtrip" `Quick test_skeleton_fill_roundtrip;
    Alcotest.test_case "skeleton atoms" `Quick test_skeleton_atoms;
    Alcotest.test_case "aligner memorizes" `Quick test_aligner_memorized;
    Alcotest.test_case "aligner copies unseen values" `Quick test_aligner_copies_values;
    Alcotest.test_case "aligner fills filter values" `Quick test_aligner_filter_value;
    Alcotest.test_case "aligner outputs well-typed" `Quick test_aligner_syntax_valid;
    Alcotest.test_case "eval metrics" `Quick test_eval_metrics;
    Alcotest.test_case "eval alternatives" `Quick test_eval_alternatives;
    Alcotest.test_case "mean half range" `Quick test_mean_half_range;
    Alcotest.test_case "no-canonicalization ablation trains" `Quick
      test_canonicalization_ablation_trains;
    Alcotest.test_case "positional ablation trains" `Quick test_positional_ablation_trains;
    Alcotest.test_case "LM extends the inventory" `Quick test_lm_extends_inventory ]
