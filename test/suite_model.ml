(* Tests for the first-class [Model] interface (docs/serving-network.md):

   - aligner-behind-interface: [Model.of_aligner] answers byte-identically
     to calling the aligner directly, and fork preserves identity;
   - the seq2seq predict path: QCheck batch-1 replay and batched-vs-looped
     decode identity (tokens and score bits), mirroring
     suite_train_parallel's training-side checks;
   - seq2seq end-to-end serving: response digests invariant across
     0/1/2/4 workers and under a seeded fault schedule; checkpoint-backed
     differential hot-swap never yields a mixed-model batch;
   - the daemon's checkpoint-backed reload over loopback, fail-closed on a
     corrupt file;
   - checkpoint weights-only restore, model_kind, and keep-last-K
     rotation pruning order. *)

open Genie_thingtalk
open Genie_serve
open Genie_nn
open Genie_checkpoint
module Model = Genie_parser_model.Model
module Aligner = Genie_parser_model.Aligner

let lib = Genie_thingpedia.Thingpedia.core_library ()
let parse = Parser.parse_program

let mini_dataset names =
  let mk sentence src =
    Genie_dataset.Example.make ~id:0 ~tokens:(Genie_util.Tok.tokenize sentence)
      ~program:(parse src) ~source:Genie_dataset.Example.Synthesized ()
  in
  List.concat
    (List.map
       (fun name ->
         [ mk
             (Printf.sprintf "tweet %s" name)
             (Printf.sprintf "now => @com.twitter.post(status = \"%s\");" name);
           mk
             (Printf.sprintf "show me emails from %s" name)
             (Printf.sprintf
                "now => (@com.gmail.inbox()) filter sender_name == \"%s\" => notify;"
                name);
           mk "get a cat picture" "now => @com.thecatapi.get() => notify;";
           mk "when i receive an email , get a cat picture"
             "monitor (@com.gmail.inbox()) => @com.thecatapi.get() => notify;" ])
       names)

let aligner =
  lazy (Aligner.train lib (mini_dataset [ "alice"; "bob"; "carol"; "dan" ]))

let utterances =
  [ "tweet alice"; "tweet bob"; "show me emails from carol";
    "get a cat picture"; "when i receive an email , get a cat picture";
    "tweet dan"; "show me emails from alice" ]

let token_lists = List.map Genie_util.Tok.tokenize utterances

let pred_essence (p : Model.prediction) =
  Printf.sprintf "%s | %s | %Lx"
    (match p.Model.program with
    | Some prog -> Printer.program_to_string prog
    | None -> "-")
    (String.concat " " p.Model.nn_tokens)
    (Int64.bits_of_float p.Model.score)

(* --- the aligner behind the interface ----------------------------------------------- *)

let test_aligner_behind_interface () =
  let al = Lazy.force aligner in
  let m = Model.of_aligner al in
  Alcotest.(check string) "kind" "aligner" (Model.kind_to_string m.Model.kind);
  Alcotest.(check string) "digest is the aligner's" (Aligner.digest al)
    m.Model.digest;
  List.iter
    (fun toks ->
      Alcotest.(check string)
        (String.concat " " toks)
        (pred_essence (Aligner.predict al toks))
        (pred_essence (m.Model.predict toks)))
    token_lists;
  List.iter2
    (fun direct through ->
      Alcotest.(check string) "batch matches direct" (pred_essence direct)
        (pred_essence through))
    (Aligner.predict_batch al token_lists)
    (m.Model.predict_batch token_lists);
  (* fork: same identity, same answers, private scratch *)
  let f = m.Model.fork () in
  Alcotest.(check string) "fork digest" m.Model.digest f.Model.digest;
  Alcotest.(check string) "fork kind" "aligner"
    (Model.kind_to_string f.Model.kind);
  List.iter
    (fun toks ->
      Alcotest.(check string) "fork answers identically"
        (pred_essence (m.Model.predict toks))
        (pred_essence (f.Model.predict toks)))
    token_lists

(* --- a tiny seq2seq (toy vocab, mirrors suite_train_parallel) ----------------------- *)

let toy_pairs =
  [ ([ "a"; "b" ], [ "x"; "y" ]);
    ([ "b"; "a" ], [ "y"; "x" ]);
    ([ "c"; "b"; "a" ], [ "z"; "x" ]);
    ([ "a" ], [ "x" ]);
    ([ "c" ], [ "z" ]);
    ([ "b"; "c"; "a" ], [ "y"; "z"; "x" ]) ]

let toy_model ?(seed = 11) ?(epochs = 2) () =
  let src_vocab = Vocab.of_tokens (List.concat_map fst toy_pairs) in
  let tgt_vocab = Vocab.of_tokens (List.concat_map snd toy_pairs) in
  let m =
    Seq2seq.create
      ~cfg:{ Seq2seq.embed_dim = 6; hidden_dim = 8; dropout = 0.1; seed }
      ~src_vocab ~tgt_vocab ()
  in
  if epochs > 0 then Seq2seq.train ~epochs ~batch:2 ~micro:1 m toy_pairs;
  m

(* random toy-vocab sources; "d" is OOV, exercising unk + copy *)
let random_src rng =
  let alphabet = [| "a"; "b"; "c"; "d" |] in
  List.init
    (1 + Genie_util.Rng.int rng 4)
    (fun _ -> alphabet.(Genie_util.Rng.int rng 4))

let test_decode_batch1_replay_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"decode_batch [x] replays decode x (randomized)"
       ~count:25
       QCheck.(int_range 1 10_000)
       (fun seed ->
         let rng = Genie_util.Rng.create seed in
         let m = toy_model ~seed:(1 + Genie_util.Rng.int rng 50) ~epochs:1 () in
         let src = random_src rng in
         let looped = Seq2seq.decode m src in
         match Seq2seq.decode_batch m [ src ] with
         | [ (toks, _) ] -> toks = looped
         | _ -> false))

let test_decode_batched_vs_looped_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"batched decode == looped decode, tokens and score bits"
       ~count:15
       QCheck.(int_range 1 10_000)
       (fun seed ->
         let rng = Genie_util.Rng.create seed in
         let m = toy_model ~seed:(1 + Genie_util.Rng.int rng 50) ~epochs:1 () in
         let srcs =
           List.init (2 + Genie_util.Rng.int rng 5) (fun _ -> random_src rng)
         in
         let batched = Seq2seq.decode_batch m srcs in
         let looped = List.map (fun s -> Seq2seq.decode_batch m [ s ]) srcs in
         List.for_all2
           (fun (bt, bs) one ->
             match one with
             | [ (lt, ls) ] ->
                 bt = lt && Int64.bits_of_float bs = Int64.bits_of_float ls
             | _ -> false)
           batched looped))

let test_decode_scratch_identity () =
  let m = toy_model () in
  let srcs = [ [ "a"; "b"; "c" ]; [ "c" ]; [ "d"; "a" ]; [ "b"; "b" ] ] in
  let plain = Seq2seq.decode_batch m srcs in
  let scratch = Tensor.Scratch.create () in
  (* a reused arena must not change a single bit *)
  for _ = 1 to 3 do
    let arena = Seq2seq.decode_batch ~scratch m srcs in
    List.iter2
      (fun (t1, s1) (t2, s2) ->
        Alcotest.(check (list string)) "tokens" t1 t2;
        Alcotest.(check int64) "score bits" (Int64.bits_of_float s1)
          (Int64.bits_of_float s2))
      plain arena
  done

(* --- the seq2seq behind the interface ----------------------------------------------- *)

(* A seq2seq over the real nn-token syntax: trained just enough to be a
   deterministic function, not to be accurate — serving invariants never
   depend on parse quality. *)
let real_pairs =
  List.map
    (fun (e : Genie_dataset.Example.t) ->
      ( List.filter (fun t -> t <> "\"") e.Genie_dataset.Example.tokens,
        Nn_syntax.to_tokens lib
          (Canonical.normalize lib e.Genie_dataset.Example.program) ))
    (mini_dataset [ "alice"; "bob" ])

let real_seq2seq ?(seed = 3) ?(epochs = 2) () =
  let src_vocab = Vocab.of_tokens (List.concat_map fst real_pairs) in
  let tgt_vocab = Vocab.of_tokens (List.concat_map snd real_pairs) in
  let m =
    Seq2seq.create
      ~cfg:{ Seq2seq.embed_dim = 8; hidden_dim = 10; dropout = 0.0; seed }
      ~src_vocab ~tgt_vocab ()
  in
  Seq2seq.train ~epochs ~batch:2 ~micro:1 m real_pairs;
  m

let seq_model_a = lazy (Model.of_seq2seq ~max_len:24 ~lib (real_seq2seq ()))

let seq_model_b =
  lazy (Model.of_seq2seq ~max_len:24 ~lib (real_seq2seq ~seed:9 ~epochs:3 ()))

let test_seq2seq_behind_interface () =
  let nn = real_seq2seq () in
  let m = Model.of_seq2seq ~max_len:24 ~lib nn in
  Alcotest.(check string) "kind" "seq2seq" (Model.kind_to_string m.Model.kind);
  Alcotest.(check string) "digest is the weight digest"
    (Seq2seq.weight_digest nn) m.Model.digest;
  (* predict == predict_batch row, fork answers identically *)
  let f = m.Model.fork () in
  Alcotest.(check string) "fork digest" m.Model.digest f.Model.digest;
  let batch = m.Model.predict_batch token_lists in
  List.iter2
    (fun toks p ->
      Alcotest.(check string) "predict == batch row"
        (pred_essence (m.Model.predict toks))
        (pred_essence p);
      Alcotest.(check string) "fork == original"
        (pred_essence (f.Model.predict toks))
        (pred_essence p);
      (* a decode either parses or is carried raw; either way it decoded *)
      Alcotest.(check bool) "score is finite" true
        (Float.is_finite p.Model.score))
    token_lists batch;
  (* the empty sentence short-circuits (no encoder positions) *)
  let p = m.Model.predict [] in
  Alcotest.(check string) "empty input" (pred_essence Model.no_prediction)
    (pred_essence p);
  (match m.Model.predict_batch [ [ "tweet"; "alice" ]; []; [ "tweet"; "bob" ] ] with
  | [ _; p; _ ] ->
      Alcotest.(check string) "empty row in a batch"
        (pred_essence Model.no_prediction)
        (pred_essence p)
  | _ -> Alcotest.fail "batch arity")

(* --- seq2seq end-to-end serving ----------------------------------------------------- *)

let request i =
  Request.make ~id:i (List.nth utterances (i mod List.length utterances))

(* worker ids and timings legitimately vary across pool sizes; everything
   else must not *)
let essence (r : Response.t) =
  Printf.sprintf "%d %s %s %s %Lx %b"
    r.Response.id
    (Response.status_to_string r.Response.status)
    (Option.value ~default:"-" r.Response.program_text)
    (String.concat "," r.Response.nn_tokens)
    (Int64.bits_of_float r.Response.score)
    r.Response.from_cache

let serve_essences ?fault ~workers model n =
  let server =
    Server.create ~lib ~model ~workers ?fault ~max_retries:3
      ~retry_backoff_ms:0.01 ~queue_capacity:16 ()
  in
  let out = ref [] in
  for b = 0 to 2 do
    let reqs = List.init n (fun i -> request ((b * n) + i)) in
    out := !out @ List.map essence (Server.run_batch ~batched:true server reqs)
  done;
  let kind = Server.model_kind server in
  Server.shutdown server;
  (!out, kind)

let test_seq2seq_serve_worker_invariance () =
  let model = Lazy.force seq_model_a in
  let n = List.length utterances in
  let base, kind = serve_essences ~workers:0 model n in
  Alcotest.(check string) "stats kind" "seq2seq" kind;
  List.iter
    (fun w ->
      let got, _ = serve_essences ~workers:w model n in
      List.iteri
        (fun i e ->
          Alcotest.(check string)
            (Printf.sprintf "workers=%d response %d" w i)
            (List.nth base i) e)
        got)
    [ 1; 2; 4 ]

let test_seq2seq_serve_fault_invariance () =
  let model = Lazy.force seq_model_a in
  let n = List.length utterances in
  let base, _ = serve_essences ~workers:0 model n in
  let fault =
    match Fault.of_string "seed=7,crash=0.2,crash_attempts=1,drop=0.1" with
    | Ok f -> f
    | Error e -> Alcotest.failf "fault spec: %s" e
  in
  (* retries absorb every scheduled crash/drop (attempts exceed the
     schedule), so the fault run must answer byte-identically *)
  List.iter
    (fun w ->
      let got, _ = serve_essences ~fault ~workers:w model n in
      List.iteri
        (fun i e ->
          Alcotest.(check string)
            (Printf.sprintf "faulted workers=%d response %d" w i)
            (List.nth base i) e)
        got)
    [ 0; 2 ]

(* --- checkpoint-backed differential swap -------------------------------------------- *)

let with_tmpdir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "genie-model-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let snap step = { Seq2seq.snap_epoch = 1; snap_pos = 0; snap_rng = 0L; snap_step = step }

let save_seq2seq ~path nn =
  Checkpoint.save_model
    ~provenance:[ ("model_kind", "seq2seq") ]
    ~snapshot:(snap 1) ~path nn

(* per-model golden answers on a private sequential server *)
let goldens model n =
  let s = Server.create ~lib ~model () in
  let tbl = Hashtbl.create 16 in
  for i = 0 to (3 * n) - 1 do
    let r = Server.handle s (request i) in
    Hashtbl.replace tbl (r.Response.id mod n) (essence { r with Response.id = r.Response.id mod n; from_cache = false })
  done;
  Server.shutdown s;
  tbl

let test_checkpoint_swap_differential () =
  with_tmpdir (fun dir ->
      let nn_a = real_seq2seq () and nn_b = real_seq2seq ~seed:9 ~epochs:3 () in
      let path_a = Filename.concat dir "a.ckpt"
      and path_b = Filename.concat dir "b.ckpt" in
      save_seq2seq ~path:path_a nn_a;
      save_seq2seq ~path:path_b nn_b;
      let load path =
        match Model.load_checkpoint ~max_len:24 ~lib path with
        | Ok m -> m
        | Error e -> Alcotest.failf "load_checkpoint %s: %s" path e
      in
      let ma = load path_a and mb = load path_b in
      Alcotest.(check string) "A digest survives the round-trip"
        (Seq2seq.weight_digest nn_a) ma.Model.digest;
      Alcotest.(check bool) "A and B genuinely differ" true
        (ma.Model.digest <> mb.Model.digest);
      let n = List.length utterances in
      let ga = goldens ma n and gb = goldens mb n in
      Alcotest.(check bool) "models disagree somewhere" true
        (List.exists
           (fun i -> Hashtbl.find ga i <> Hashtbl.find gb i)
           (List.init n Fun.id));
      List.iter
        (fun workers ->
          let server = Server.create ~lib ~model:ma ~workers () in
          let check_against tbl phase (r : Response.t) =
            let want = Hashtbl.find tbl (r.Response.id mod n) in
            let got =
              essence
                { r with Response.id = r.Response.id mod n; from_cache = false }
            in
            if got <> want then
              Alcotest.failf
                "%s (workers=%d): response %d is not the %s golden:\n\
                \  want %s\n\
                \  got  %s"
                phase workers r.Response.id phase want got
          in
          for b = 0 to 2 do
            List.iter
              (check_against ga "old-model")
              (Server.run_batch ~batched:true server
                 (List.init n (fun i -> request ((b * n) + i))))
          done;
          (match Server.swap_model server mb with
          | `Swapped d -> Alcotest.(check string) "digest is B" mb.Model.digest d
          | `Unchanged _ -> Alcotest.fail "swap did not commit");
          for b = 3 to 5 do
            List.iter
              (check_against gb "new-model")
              (Server.run_batch ~batched:true server
                 (List.init n (fun i -> request ((b * n) + i))))
          done;
          let s = Server.stats server in
          Alcotest.(check int) "one swap" 1 s.Server.swaps;
          Alcotest.(check string) "kind stays seq2seq" "seq2seq"
            s.Server.model_kind;
          Server.shutdown server)
        [ 0; 2; 4 ])

(* --- daemon: checkpoint-backed reload over loopback, fail-closed -------------------- *)

let rec wait_for ?(tries = 400) pred =
  if tries = 0 then Alcotest.fail "timed out waiting for daemon state"
  else if not (pred ()) then begin
    Unix.sleepf 0.005;
    wait_for ~tries:(tries - 1) pred
  end

let mentions needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_daemon_checkpoint_reload_fail_closed () =
  with_tmpdir (fun dir ->
      let nn_a = real_seq2seq () and nn_b = real_seq2seq ~seed:9 ~epochs:3 () in
      let path = Filename.concat dir "live.ckpt" in
      save_seq2seq ~path nn_a;
      let boot =
        match Model.load_checkpoint ~max_len:24 ~lib path with
        | Ok m -> m
        | Error e -> Alcotest.failf "boot load: %s" e
      in
      let server = Server.create ~lib ~model:boot () in
      let swapped = ref None in
      (* the CLI's reload closure: re-read the configured path, fail closed *)
      let reload _ordinal =
        match Model.load_checkpoint ~max_len:24 ~lib path with
        | Ok m -> Some m
        | Error _ -> None
      in
      let d =
        Genie_net.Daemon.create ~server ~reload
          ~on_swap:(fun ~old_digest ~new_digest ->
            swapped := Some (old_digest, new_digest))
          Genie_net.Daemon.default_config
      in
      let dom = Domain.spawn (fun () -> Genie_net.Daemon.run d) in
      let finish () =
        Genie_net.Daemon.request_drain d;
        Domain.join dom;
        Server.shutdown server
      in
      (try
         let c = Genie_net.Client.connect ~port:(Genie_net.Daemon.port d) () in
         Genie_net.Client.send_request c (request 0);
         ignore (Genie_net.Client.recv_response c);
         (* a new checkpoint lands at the same path; SIGHUP picks it up *)
         save_seq2seq ~path nn_b;
         Genie_net.Client.reload c;
         wait_for (fun () -> !swapped <> None);
         (match !swapped with
         | Some (od, nd) ->
             Alcotest.(check string) "old digest"
               (Seq2seq.weight_digest nn_a) od;
             Alcotest.(check string) "new digest"
               (Seq2seq.weight_digest nn_b) nd
         | None -> assert false);
         (* corrupt the file in place: the next reload must fail closed *)
         let oc = open_out_bin path in
         output_string oc "GENIECKP garbage";
         close_out oc;
         Genie_net.Client.reload c;
         wait_for (fun () ->
             mentions "\"reload_failures\":1" (Genie_net.Client.server_stats c));
         (* the daemon keeps answering on the swapped-in model *)
         Genie_net.Client.send_request c (request 1);
         let r = Genie_net.Client.recv_response c in
         Alcotest.(check int) "still answers" 1 r.Genie_net.Codec.rs_id;
         let js = Genie_net.Client.server_stats c in
         Alcotest.(check bool) "stats carry the model kind" true
           (mentions "\"model_kind\":\"seq2seq\"" js);
         Alcotest.(check bool) "stats carry B's digest" true
           (mentions (Seq2seq.weight_digest nn_b) js);
         Genie_net.Client.close c
       with e ->
         finish ();
         raise e);
      finish ();
      let s = Genie_net.Daemon.stats d in
      Alcotest.(check int) "one committed reload" 1 s.Genie_net.Daemon.reloads;
      Alcotest.(check int) "one failed reload" 1
        s.Genie_net.Daemon.reload_failures;
      Alcotest.(check string) "digest stayed on B"
        (Seq2seq.weight_digest nn_b)
        s.Genie_net.Daemon.model_digest;
      Alcotest.(check string) "kind reported" "seq2seq"
        s.Genie_net.Daemon.model_kind)

(* --- checkpoint: weights-only restore and model_kind -------------------------------- *)

let test_restore_weights_skips_moments () =
  let m = toy_model () in
  let ck = Checkpoint.of_model ~snapshot:(snap 9) m in
  (match Checkpoint.restore_weights ck with
  | Error e -> Alcotest.failf "restore_weights: %s" e
  | Ok m' ->
      Alcotest.(check string) "weights restored bitwise"
        (Seq2seq.weight_digest m) (Seq2seq.weight_digest m');
      (* training left nonzero moments behind; the servable restore must
         not carry them *)
      let nonzero p =
        let any = ref false in
        Tensor.iteri
          (fun _ x -> if x <> 0.0 then any := true)
          p.Genie_nn.Layers.m;
        !any
      in
      Alcotest.(check bool) "original has trained moments" true
        (List.exists nonzero (Seq2seq.params m));
      Alcotest.(check bool) "restored moments are zero" false
        (List.exists nonzero (Seq2seq.params m')));
  match Checkpoint.restore ck with
  | Error e -> Alcotest.failf "restore: %s" e
  | Ok full ->
      let bits p = Array.map Int64.bits_of_float (Tensor.to_array p.Genie_nn.Layers.m) in
      List.iter2
        (fun p p' ->
          Alcotest.(check (array int64)) "full restore keeps moments" (bits p)
            (bits p'))
        (Seq2seq.params m) (Seq2seq.params full)

let test_model_kind_provenance () =
  let m = toy_model ~epochs:0 () in
  let bare = Checkpoint.of_model ~snapshot:(snap 0) m in
  Alcotest.(check string) "kind defaults to seq2seq" "seq2seq"
    (Checkpoint.model_kind bare);
  let tagged =
    Checkpoint.of_model
      ~provenance:[ ("model_kind", "seq2seq"); ("seed", "11") ]
      ~snapshot:(snap 0) m
  in
  Alcotest.(check string) "kind from provenance" "seq2seq"
    (Checkpoint.model_kind tagged);
  Alcotest.(check bool) "describe reports the kind" true
    (mentions "kind:           seq2seq" (Checkpoint.describe bare))

(* --- checkpoint rotation (keep-last-K GC) ------------------------------------------- *)

let test_rotation_path_format () =
  Alcotest.(check string) "zero-padded"
    "/tmp/m.ckpt.step00000042"
    (Checkpoint.rotation_path ~path:"/tmp/m.ckpt" ~step:42);
  Alcotest.check_raises "negative step"
    (Invalid_argument "Checkpoint.rotation_path: negative step") (fun () ->
      ignore (Checkpoint.rotation_path ~path:"x" ~step:(-1)))

let test_rotation_pruning_order () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "model.ckpt" in
      let m = toy_model () in
      let steps = [ 1; 2; 3; 4; 5 ] in
      List.iter
        (fun step ->
          let written =
            Checkpoint.save_rotating ~snapshot:(snap step) ~path ~keep:3 m
          in
          Alcotest.(check string) "returns the step file"
            (Checkpoint.rotation_path ~path ~step)
            written;
          Alcotest.(check bool) "step file exists" true (Sys.file_exists written);
          Alcotest.(check bool) "latest exists" true (Sys.file_exists path))
        steps;
      (* keep=3: the oldest two rotations were pruned, ascending order *)
      Alcotest.(check (list int)) "last K survive, in step order" [ 3; 4; 5 ]
        (List.map fst (Checkpoint.rotations ~path));
      (* the stable latest file matches the newest rotation byte for byte *)
      let read f = In_channel.with_open_bin f In_channel.input_all in
      Alcotest.(check bool) "latest == newest rotation" true
        (read path = read (Checkpoint.rotation_path ~path ~step:5));
      (* every survivor still loads *)
      List.iter
        (fun (step, file) ->
          match Checkpoint.load file with
          | Error e -> Alcotest.failf "rotation %d unreadable: %s" step e
          | Ok ck ->
              Alcotest.(check int) "snapshot step" step
                ck.Checkpoint.snapshot.Seq2seq.snap_step)
        (Checkpoint.rotations ~path);
      (* stray non-rotation siblings are never touched or listed *)
      let stray = path ^ ".stepXXXXXXXX" in
      let oc = open_out stray in
      output_string oc "not a rotation";
      close_out oc;
      Alcotest.(check (list int)) "non-digit suffix ignored" [ 3; 4; 5 ]
        (List.map fst (Checkpoint.rotations ~path));
      (* explicit prune to 1 deletes oldest-first and spares the latest *)
      let deleted = Checkpoint.prune_rotations ~path ~keep:1 in
      Alcotest.(check (list string)) "deleted oldest first"
        [ Checkpoint.rotation_path ~path ~step:3;
          Checkpoint.rotation_path ~path ~step:4 ]
        deleted;
      Alcotest.(check (list int)) "one rotation left" [ 5 ]
        (List.map fst (Checkpoint.rotations ~path));
      Alcotest.(check bool) "stable latest untouched" true
        (Sys.file_exists path);
      (* keep is clamped >= 1: a save_rotating can never delete the file it
         just wrote *)
      let written =
        Checkpoint.save_rotating ~snapshot:(snap 6) ~path ~keep:0 m
      in
      Alcotest.(check bool) "keep=0 still leaves the new file" true
        (Sys.file_exists written))

let suite =
  [ Alcotest.test_case "aligner behind the interface is byte-identical" `Quick
      test_aligner_behind_interface;
    test_decode_batch1_replay_qcheck;
    test_decode_batched_vs_looped_qcheck;
    Alcotest.test_case "decode scratch arena is bitwise-invisible" `Quick
      test_decode_scratch_identity;
    Alcotest.test_case "seq2seq behind the interface" `Quick
      test_seq2seq_behind_interface;
    Alcotest.test_case "seq2seq serving is worker-count-invariant" `Slow
      test_seq2seq_serve_worker_invariance;
    Alcotest.test_case "seq2seq serving survives fault schedules" `Slow
      test_seq2seq_serve_fault_invariance;
    Alcotest.test_case "checkpoint-backed swap is differential, never mixed"
      `Slow test_checkpoint_swap_differential;
    Alcotest.test_case "daemon checkpoint reload fails closed on corruption"
      `Slow test_daemon_checkpoint_reload_fail_closed;
    Alcotest.test_case "restore_weights skips moments" `Quick
      test_restore_weights_skips_moments;
    Alcotest.test_case "model_kind provenance and describe" `Quick
      test_model_kind_provenance;
    Alcotest.test_case "rotation path format" `Quick test_rotation_path_format;
    Alcotest.test_case "rotation pruning order" `Quick
      test_rotation_pruning_order ]
