(* Differential, property and golden tests for the domain-parallel synthesis
   pipeline. The engine's contract is that the synthesized corpus is a pure
   function of (grammar, config): byte-identical at every worker count, under
   injected shard crashes/drops, and with the memo cache on or off. The
   differential tests check that contract over every experiment grammar the
   repo uses (core ThingTalk, the TACL policy language, the TT+A aggregation
   extension, and the comprehensive Spotify skill); golden digests pin the
   canonical bucket order against the files under test/golden/.

   Regolding (after an intentional grammar or ordering change): run with
   SYNTH_REGOLD=1 to print the new digest lines, or regenerate the files
   directly with
     genie synthesize --target 30 --depth 3 --seed 51 --digest-dir test/golden
   (see docs/synthesis.md). *)

open Genie_thingtalk
module Engine = Genie_synthesis.Engine
module Grammar = Genie_templates.Grammar
module Derivation = Genie_templates.Derivation
module Fault = Genie_conc.Fault

(* Worker counts under test. CI legs override via GENIE_TEST_WORKERS (a CSV,
   e.g. "4"); the sequential reference is always included. *)
let worker_counts =
  match Sys.getenv_opt "GENIE_TEST_WORKERS" with
  | None -> [ 0; 1; 2; 4 ]
  | Some s ->
      0
      :: (String.split_on_char ',' (String.trim s)
         |> List.filter (fun x -> x <> "")
         |> List.map int_of_string
         |> List.filter (fun w -> w > 0))

(* --- the experiment grammars ------------------------------------------------------ *)

type tcase = { cname : string; grammar : Grammar.t Lazy.t; cfg : Engine.config }

let mk_cfg ~seed ~target ~depth =
  { Engine.default_config with
    Engine.seed;
    target_per_rule = target;
    max_depth = depth }

(* Same parameters as the CLI golden run (`genie synthesize --target 30
   --depth 3 --seed 51`): the core case doubles as the golden corpus. *)
let core_case =
  { cname = "core";
    grammar =
      lazy
        (let lib = Genie_thingpedia.Thingpedia.core_library () in
         Grammar.create lib
           ~prims:(Genie_thingpedia.Thingpedia.core_templates ())
           ~rules:(Genie_templates.Rules_thingtalk.rules lib)
           ~rng:(Genie_util.Rng.create 51) ());
    cfg = mk_cfg ~seed:51 ~target:30 ~depth:3 }

(* TACL access-control policies: start symbol "policy" (Case_studies). *)
let tacl_case =
  { cname = "tacl";
    grammar =
      lazy
        (let lib =
           Schema.Library.of_classes
             (Genie_thingpedia.Thingpedia.core_classes
             @ [ Genie_templates.Rules_tacl.policy_class ])
         in
         let rules =
           Genie_templates.Rules_tacl.rules lib
           @ List.filter
               (fun (r : Grammar.rule) -> r.Grammar.name = "np_filter")
               (Genie_templates.Rules_thingtalk.rules lib)
         in
         let extra_terminals =
           [ ( "person",
               Genie_templates.Rules_tacl.person_terminals
                 (Genie_util.Rng.create 9) ~samples:1 ) ]
         in
         Grammar.create lib
           ~prims:(Genie_thingpedia.Thingpedia.core_templates ())
           ~rules
           ~rng:(Genie_util.Rng.create 19)
           ~start:"policy" ~extra_terminals ());
    cfg = mk_cfg ~seed:29 ~target:20 ~depth:3 }

(* TT+A: ThingTalk extended with aggregation templates. *)
let agg_case =
  { cname = "aggregation";
    grammar =
      lazy
        (let lib = Genie_thingpedia.Thingpedia.core_library () in
         Grammar.create lib
           ~prims:(Genie_thingpedia.Thingpedia.core_templates ())
           ~rules:
             (Genie_templates.Rules_thingtalk.rules lib
             @ Genie_templates.Rules_agg.rules lib)
           ~rng:(Genie_util.Rng.create 31)
           ~extra_terminals:(Genie_templates.Rules_agg.terminals lib) ());
    cfg = mk_cfg ~seed:33 ~target:20 ~depth:3 }

(* Spotify: the full library with the comprehensive skill's templates. *)
let spotify_case =
  { cname = "spotify";
    grammar =
      lazy
        (let lib = Genie_thingpedia.Thingpedia.full_library () in
         Grammar.create lib
           ~prims:(Genie_thingpedia.Thingpedia.spotify_templates ())
           ~rules:(Genie_templates.Rules_thingtalk.rules lib)
           ~rng:(Genie_util.Rng.create 41) ());
    cfg = mk_cfg ~seed:43 ~target:15 ~depth:3 }

let cases = [ core_case; tacl_case; agg_case; spotify_case ]

let synth ?fault ?cache ~workers case =
  Engine.synthesize_derivations ?fault ?cache ~workers (Lazy.force case.grammar)
    case.cfg

(* The sequential corpus of each case, computed once and shared by the
   differential, fault and golden tests. *)
let reference case = lazy (synth ~workers:0 case)

let core_reference = reference core_case
let references =
  List.map
    (fun case ->
      (case, if case.cname = "core" then core_reference else reference case))
    cases

(* --- differential: every worker count produces the reference corpus -------------- *)

let check_same_corpus label expected got =
  Alcotest.(check int) (label ^ ": size") (List.length expected) (List.length got);
  Alcotest.(check bool) (label ^ ": content") true (expected = got)

let test_workers_identical (case, ref_corpus) () =
  let expected = Lazy.force ref_corpus in
  Alcotest.(check bool) (case.cname ^ ": nonempty") true (List.length expected > 0);
  List.iter
    (fun w ->
      check_same_corpus
        (Printf.sprintf "%s: workers=%d" case.cname w)
        expected (synth ~workers:w case))
    (List.filter (fun w -> w > 0) worker_counts)

(* Seeded shard-fault schedules: crashed/dropped shards are retried with the
   same RNG, so no surviving schedule may change a byte of the corpus. *)
let fault_schedules =
  [ ( "crash",
      Fault.create
        { Fault.default with Fault.seed = 7; crash_rate = 0.4; crash_attempts = 2 } );
    ( "crash+drop",
      Fault.create
        { Fault.default with
          Fault.seed = 11;
          crash_rate = 0.25;
          crash_attempts = 1;
          drop_rate = 0.25;
          drop_attempts = 1 } ) ]

let test_fault_identical (case, ref_corpus) () =
  let expected = Lazy.force ref_corpus in
  List.iter
    (fun (fname, fault) ->
      List.iter
        (fun w ->
          check_same_corpus
            (Printf.sprintf "%s: fault=%s workers=%d" case.cname fname w)
            expected
            (synth ~fault ~workers:w case))
        worker_counts)
    fault_schedules

(* --- memo-cache transparency ------------------------------------------------------ *)

(* The per-shard memo cache short-circuits semantic-function applications;
   apply_rule is deterministic, so caching must be observationally
   invisible across seeds. *)
let qcheck_cache_transparent =
  QCheck.Test.make ~name:"memo cache is observationally transparent" ~count:200
    QCheck.small_nat (fun n ->
      let cfg = mk_cfg ~seed:n ~target:8 ~depth:2 in
      let g = Lazy.force core_case.grammar in
      Engine.synthesize_derivations ~cache:true g cfg
      = Engine.synthesize_derivations ~cache:false g cfg)

(* --- structural sort key properties ----------------------------------------------- *)

let derivation_pool = lazy (Array.of_list (Lazy.force core_reference))

let arbitrary_derivation =
  QCheck.make
    (QCheck.Gen.map
       (fun i ->
         let pool = Lazy.force derivation_pool in
         pool.(i mod Array.length pool))
       QCheck.Gen.big_nat)
    ~print:(fun d -> Derivation.sort_key d)

let sign x = compare x 0

let qcheck_sort_key_total_order =
  QCheck.Test.make ~name:"structural compare is a consistent total order"
    ~count:300
    QCheck.(pair arbitrary_derivation arbitrary_derivation)
    (fun (a, b) ->
      Derivation.compare_structural a a = 0
      && Derivation.compare_structural b b = 0
      && sign (Derivation.compare_structural a b)
         = - (sign (Derivation.compare_structural b a)))

let qcheck_sort_key_antisymmetric =
  QCheck.Test.make
    ~name:"structural compare is antisymmetric at dedup granularity" ~count:300
    QCheck.(pair arbitrary_derivation arbitrary_derivation)
    (fun (a, b) ->
      (* equal order <=> same sort key <=> same (depth, dedup key): exactly
         the granularity the merge's global dedup uses *)
      if Derivation.compare_structural a b = 0 then
        Derivation.sort_key a = Derivation.sort_key b
        && a.Derivation.depth = b.Derivation.depth
        && Derivation.key a = Derivation.key b
      else Derivation.sort_key a <> Derivation.sort_key b)

let test_decorations_agree () =
  (* decorate/decorate_keyed are the fused fast paths the engine uses; they
     must agree with the specification functions *)
  Array.iter
    (fun d ->
      let sk, h = Derivation.decorate d in
      Alcotest.(check string) "decorate sort key" (Derivation.sort_key d) sk;
      Alcotest.(check int64) "decorate hash" (Derivation.structural_hash d) h;
      Alcotest.(check bool) "decorate_keyed agrees" true
        (Derivation.decorate_keyed d (Derivation.key d) = (sk, h)))
    (Lazy.force derivation_pool)

(* --- corpus order and digests ----------------------------------------------------- *)

let test_canonical_order () =
  (* within each depth slice the corpus is sorted by structural key with no
     dedup-key duplicates anywhere *)
  let ds = Lazy.force core_reference in
  let by_depth = Hashtbl.create 8 in
  List.iter
    (fun d ->
      let cur =
        Option.value ~default:[] (Hashtbl.find_opt by_depth d.Derivation.depth)
      in
      Hashtbl.replace by_depth d.Derivation.depth (d :: cur))
    ds;
    Hashtbl.iter
      (fun depth slice ->
        let slice = List.rev slice in
        let keys = List.map Derivation.sort_key slice in
        Alcotest.(check bool)
          (Printf.sprintf "depth %d slice sorted" depth)
          true
          (keys = List.sort compare keys))
      by_depth;
  let keys = List.map Derivation.key ds in
  Alcotest.(check int) "no dedup-key duplicates" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let golden_depths = [ 1; 2; 3 ]

(* dune runtest runs in the sandboxed test directory; dune exec from the
   project root — accept either. *)
let read_golden depth =
  let name = Printf.sprintf "golden/synth_d%d.digest" depth in
  let path =
    if Sys.file_exists name then name else Filename.concat "test" name
  in
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  line

let test_golden_digests () =
  let ds = Lazy.force core_reference in
  let regold = Sys.getenv_opt "SYNTH_REGOLD" <> None in
  List.iter
    (fun depth ->
      let pairs, hex = Engine.corpus_digest ds ~depth in
      let line = Printf.sprintf "depth=%d pairs=%d digest=%s" depth pairs hex in
      if regold then Printf.printf "test/golden/synth_d%d.digest: %s\n%!" depth line;
      Alcotest.(check string)
        (Printf.sprintf "golden digest depth %d" depth)
        (read_golden depth) line)
    golden_depths

(* Regression: [Derivation.key] memoizes its printed form per physical
   derivation, so revisiting a corpus (repeat digests, golden dumps, sorts)
   re-prints nothing — and the memo is invisible: same digests, same keys. *)
let test_digest_memoized_no_reprint () =
  let ds = Lazy.force core_reference in
  let digests () =
    List.map (fun depth -> Engine.corpus_digest ds ~depth) golden_depths
  in
  let first = digests () in
  let before = Genie_thingtalk.Printer.program_print_count () in
  Alcotest.(check bool) "repeat digest identical" true (first = digests ());
  let _ = List.map Derivation.sort_key ds in
  Alcotest.(check int) "zero re-prints on revisit" 0
    (Genie_thingtalk.Printer.program_print_count () - before)

let test_digest_sensitivity () =
  (* the digest is over sort keys in corpus order: dropping or reordering a
     pair changes it *)
  let ds = Lazy.force core_reference in
  let _, full = Engine.corpus_digest ds ~depth:1 in
  let _, dropped = Engine.corpus_digest (List.tl ds) ~depth:1 in
  let at1 = List.filter (fun d -> d.Derivation.depth = 1) ds in
  let _, reordered = Engine.corpus_digest (List.rev at1) ~depth:1 in
  Alcotest.(check bool) "drop changes digest" true (full <> dropped);
  Alcotest.(check bool) "reorder changes digest" true (full <> reordered)

(* --- stats plumbing --------------------------------------------------------------- *)

let test_stats_consistent () =
  let fault =
    Fault.create
      { Fault.default with Fault.seed = 7; crash_rate = 0.4; crash_attempts = 2 }
  in
  let ds, st =
    Engine.synthesize_derivations_stats ~workers:2 ~fault
      (Lazy.force core_case.grammar) core_case.cfg
  in
  Alcotest.(check bool) "corpus still canonical" true (ds = Lazy.force core_reference);
  Alcotest.(check bool) "shards scheduled" true (st.Engine.shards > 0);
  Alcotest.(check bool) "schedule injected retries" true (st.Engine.shard_retries > 0);
  Alcotest.(check bool) "cache active" true (st.Engine.cache_hits > 0);
  (* depth >= 1 kept derivations are exactly the non-terminal-depth corpus *)
  let nonterminal =
    List.length (List.filter (fun d -> d.Derivation.depth >= 1) ds)
  in
  Alcotest.(check bool) "merged covers the corpus" true (st.Engine.merged >= nonterminal)

let suite =
  List.concat
    [ List.map
        (fun ((case, _) as cr) ->
          Alcotest.test_case
            (Printf.sprintf "corpus worker-invariant (%s)" case.cname)
            `Quick (test_workers_identical cr))
        references;
      List.map
        (fun ((case, _) as cr) ->
          Alcotest.test_case
            (Printf.sprintf "corpus fault-invariant (%s)" case.cname)
            `Slow (test_fault_identical cr))
        references;
      [ QCheck_alcotest.to_alcotest qcheck_cache_transparent;
        QCheck_alcotest.to_alcotest qcheck_sort_key_total_order;
        QCheck_alcotest.to_alcotest qcheck_sort_key_antisymmetric;
        Alcotest.test_case "decorations agree with spec" `Quick test_decorations_agree;
        Alcotest.test_case "canonical corpus order" `Quick test_canonical_order;
        Alcotest.test_case "golden corpus digests" `Quick test_golden_digests;
        Alcotest.test_case "digest sensitivity" `Quick test_digest_sensitivity;
        Alcotest.test_case "digest memoized, no reprint" `Quick
          test_digest_memoized_no_reprint;
        Alcotest.test_case "stats consistent under faults" `Quick test_stats_consistent ] ]
