(* Tests for checkpoint/resume and live model hot-swap (docs/checkpointing.md):

   - the checkpoint codec: QCheck round-trips over randomized parameter and
     moment shapes (exact float bit patterns), strict rejection of
     truncated / corrupted / wrong-magic / wrong-version / padded files,
     atomic save (no stray .tmp, overwrite-in-place), and restore's
     never-half-load contract;
   - resume determinism: a run killed at optimizer step k (mid-epoch or on
     an epoch boundary) and resumed from its checkpoint lands on weights
     byte-identical to the uninterrupted run, at every worker count;
   - hot-swap atomicity: [Server.swap_model] between batches invalidates
     the parse caches, keeps the compiled-program caches, no-ops on an
     equal digest, and — differentially, against per-model golden response
     sets, under a seeded fault schedule, at several pool sizes — never
     lets a request see a mixture of two models;
   - the daemon's Reload frame end to end over loopback. *)

open Genie_thingtalk
open Genie_serve
open Genie_nn
open Genie_checkpoint

(* --- a tiny seq2seq training world (mirrors suite_train_parallel) ------------------ *)

let toy_pairs =
  [ ([ "a"; "b" ], [ "x"; "y" ]);
    ([ "b"; "a" ], [ "y"; "x" ]);
    ([ "c"; "b"; "a" ], [ "z"; "x" ]);
    ([ "a" ], [ "x" ]);
    ([ "c" ], [ "z" ]);
    ([ "b"; "c"; "a" ], [ "y"; "z"; "x" ]) ]

let toy_model ?(dropout = 0.1) ?(seed = 11) () =
  let src_vocab = Vocab.of_tokens (List.concat_map fst toy_pairs) in
  let tgt_vocab = Vocab.of_tokens (List.concat_map snd toy_pairs) in
  Seq2seq.create
    ~cfg:{ Seq2seq.embed_dim = 6; hidden_dim = 8; dropout; seed }
    ~src_vocab ~tgt_vocab ()

let mid_snapshot =
  { Seq2seq.snap_epoch = 2; snap_pos = 4; snap_rng = 77L; snap_step = 9 }

(* --- codec round-trips -------------------------------------------------------------- *)

let check_roundtrip name (ck : Checkpoint.t) =
  match Checkpoint.decode (Checkpoint.encode ck) with
  | Error e -> Alcotest.failf "%s: decode failed: %s" name e
  | Ok ck' ->
      Alcotest.(check string) (name ^ ": body digest") (Checkpoint.digest ck)
        (Checkpoint.digest ck');
      Alcotest.(check int)
        (name ^ ": snapshot epoch")
        ck.Checkpoint.snapshot.Seq2seq.snap_epoch
        ck'.Checkpoint.snapshot.Seq2seq.snap_epoch;
      Alcotest.(check (list (pair string string)))
        (name ^ ": provenance") ck.Checkpoint.provenance
        ck'.Checkpoint.provenance;
      List.iter2
        (fun (p : Checkpoint.param_blob) (p' : Checkpoint.param_blob) ->
          Alcotest.(check string) (name ^ ": param name") p.Checkpoint.pb_name
            p'.Checkpoint.pb_name;
          let bits a = Array.map Int64.bits_of_float a in
          Alcotest.(check (array int64))
            (name ^ ": weights bitwise")
            (bits p.Checkpoint.pb_w) (bits p'.Checkpoint.pb_w);
          Alcotest.(check (array int64))
            (name ^ ": first moments bitwise")
            (bits p.Checkpoint.pb_m) (bits p'.Checkpoint.pb_m);
          Alcotest.(check (array int64))
            (name ^ ": second moments bitwise")
            (bits p.Checkpoint.pb_v) (bits p'.Checkpoint.pb_v))
        ck.Checkpoint.params ck'.Checkpoint.params

let test_roundtrip_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"checkpoint round-trip (randomized shapes)"
       ~count:20
       QCheck.(int_range 1 10_000)
       (fun seed ->
         let rng = Genie_util.Rng.create seed in
         let embed = 2 + Genie_util.Rng.int rng 6 in
         let hidden = 2 + Genie_util.Rng.int rng 6 in
         let m =
           Seq2seq.create
             ~cfg:
               { Seq2seq.embed_dim = embed;
                 hidden_dim = hidden;
                 dropout = Genie_util.Rng.float rng 0.5;
                 seed }
             ~src_vocab:(Vocab.of_tokens [ "a"; "b"; "c" ])
             ~tgt_vocab:(Vocab.of_tokens [ "x"; "y" ])
             ()
         in
         (* moments carry whatever training left behind: synthesize some *)
         Seq2seq.train ~epochs:1 ~batch:2 ~micro:1 m toy_pairs;
         let snapshot =
           { Seq2seq.snap_epoch = Genie_util.Rng.int rng 5;
             snap_pos = Genie_util.Rng.int rng 7;
             snap_rng = Int64.of_int (Genie_util.Rng.int rng 1_000_000);
             snap_step = Genie_util.Rng.int rng 100 }
         in
         let ck =
           Checkpoint.of_model
             ~provenance:[ ("k", string_of_int seed); ("empty", "") ]
             ~snapshot m
         in
         check_roundtrip "qcheck" ck;
         true))

let mk_checkpoint () =
  let m = toy_model () in
  Seq2seq.train ~epochs:1 ~batch:2 ~micro:1 m toy_pairs;
  Checkpoint.of_model ~provenance:[ ("seed", "11") ] ~snapshot:mid_snapshot m

let test_rejects_truncation () =
  let s = Checkpoint.encode (mk_checkpoint ()) in
  List.iter
    (fun len ->
      if len < String.length s then
        match Checkpoint.decode (String.sub s 0 len) with
        | Ok _ -> Alcotest.failf "truncation to %d bytes accepted" len
        | Error _ -> ())
    [ 0; 4; 7; 8; 11; 12; 27; 28; 100; String.length s - 1 ]

let test_rejects_trailing_bytes () =
  let s = Checkpoint.encode (mk_checkpoint ()) in
  match Checkpoint.decode (s ^ "\x00") with
  | Ok _ -> Alcotest.fail "padded file accepted"
  | Error e ->
      Alcotest.(check bool)
        ("mentions corruption: " ^ e)
        true
        (String.length e > 0)

let test_rejects_corruption =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"any single flipped body byte is rejected"
       ~count:30
       QCheck.(int_range 0 1_000_000)
       (fun pos ->
         let s = Bytes.of_string (Checkpoint.encode (mk_checkpoint ())) in
         (* past the header: header corruption is covered separately *)
         let header = 8 + 4 + 16 in
         let i = header + (pos mod (Bytes.length s - header)) in
         Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor 0x5a));
         match Checkpoint.decode (Bytes.to_string s) with
         | Ok _ -> false
         | Error _ -> true))

let test_rejects_bad_magic_and_version () =
  let s = Checkpoint.encode (mk_checkpoint ()) in
  let b = Bytes.of_string s in
  Bytes.set b 0 'X';
  (match Checkpoint.decode (Bytes.to_string b) with
  | Ok _ -> Alcotest.fail "bad magic accepted"
  | Error e ->
      Alcotest.(check bool) ("magic error: " ^ e) true
        (String.length e > 0));
  let b = Bytes.of_string s in
  (* version is a big-endian u32 right after the 8-byte magic *)
  Bytes.set b 11 (Char.chr (Checkpoint.version + 1));
  match Checkpoint.decode (Bytes.to_string b) with
  | Ok _ -> Alcotest.fail "future version accepted"
  | Error e ->
      Alcotest.(check bool) ("version error: " ^ e) true (String.length e > 0)

let test_restore_never_half_loads () =
  let ck = mk_checkpoint () in
  (* a shape lie must fail restore outright *)
  let bad_shape =
    { ck with
      Checkpoint.params =
        (match ck.Checkpoint.params with
        | p :: rest -> { p with Checkpoint.pb_rows = p.Checkpoint.pb_rows + 1 } :: rest
        | [] -> assert false) }
  in
  (match Checkpoint.restore bad_shape with
  | Ok _ -> Alcotest.fail "shape mismatch restored"
  | Error _ -> ());
  let bad_name =
    { ck with
      Checkpoint.params =
        (match ck.Checkpoint.params with
        | p :: rest -> { p with Checkpoint.pb_name = "nonsense" } :: rest
        | [] -> assert false) }
  in
  match Checkpoint.restore bad_name with
  | Ok _ -> Alcotest.fail "name mismatch restored"
  | Error _ -> ()

let test_restore_bitwise () =
  let m = toy_model () in
  Seq2seq.train ~epochs:2 ~batch:2 ~micro:1 m toy_pairs;
  let ck = Checkpoint.of_model ~snapshot:mid_snapshot m in
  Alcotest.(check string) "captured weight digest matches live model"
    (Seq2seq.weight_digest m) (Checkpoint.weight_digest ck);
  match Checkpoint.restore ck with
  | Error e -> Alcotest.failf "restore failed: %s" e
  | Ok m' ->
      Alcotest.(check string) "restored weight digest"
        (Seq2seq.weight_digest m) (Seq2seq.weight_digest m');
      (* moments and step round-tripped too: re-capturing must be identical *)
      Alcotest.(check string) "re-captured body digest"
        (Checkpoint.digest ck)
        (Checkpoint.digest (Checkpoint.of_model ~snapshot:mid_snapshot m'))

let with_tmpdir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "genie-ckpt-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let test_atomic_save_load () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "model.ckpt" in
      let ck = mk_checkpoint () in
      Checkpoint.save ~path ck;
      Alcotest.(check bool) "no stray tmp file" false
        (Sys.file_exists (path ^ ".tmp"));
      (match Checkpoint.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok ck' ->
          Alcotest.(check string) "digest survives disk" (Checkpoint.digest ck)
            (Checkpoint.digest ck'));
      (* overwrite in place: the newer capture wins whole *)
      let m2 = toy_model ~seed:12 () in
      Seq2seq.train ~epochs:1 ~batch:2 ~micro:1 m2 toy_pairs;
      let ck2 = Checkpoint.of_model ~snapshot:mid_snapshot m2 in
      Checkpoint.save ~path ck2;
      (match Checkpoint.load path with
      | Error e -> Alcotest.failf "reload failed: %s" e
      | Ok ck' ->
          Alcotest.(check string) "overwritten whole"
            (Checkpoint.digest ck2) (Checkpoint.digest ck'));
      match Checkpoint.load (Filename.concat dir "absent.ckpt") with
      | Ok _ -> Alcotest.fail "absent file loaded"
      | Error _ -> ())

(* --- describe / inspect (genie ckpt inspect) --------------------------------------- *)

let test_describe_inspect () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "model.ckpt" in
      let ck = mk_checkpoint () in
      Checkpoint.save ~path ck;
      let report =
        match Checkpoint.inspect path with
        | Ok s -> s
        | Error e -> Alcotest.failf "inspect failed: %s" e
      in
      Alcotest.(check string) "inspect = describe of the loaded checkpoint"
        (Checkpoint.describe ck) report;
      List.iter
        (fun sub ->
          Alcotest.(check bool) ("report mentions " ^ sub) true
            (Genie_util.Tok.contains_substring ~sub report))
        [ "version:"; "digest:"; Checkpoint.digest ck;
          Checkpoint.weight_digest ck; "snapshot:"; "epoch=2"; "provenance";
          "seed"; "11" ];
      (* a truncated file yields the decode error, never a partial report *)
      let s = Checkpoint.encode ck in
      let bad = Filename.concat dir "bad.ckpt" in
      let oc = open_out_bin bad in
      output_string oc (String.sub s 0 (String.length s - 9));
      close_out oc;
      match Checkpoint.inspect bad with
      | Ok _ -> Alcotest.fail "truncated checkpoint produced a report"
      | Error e ->
          Alcotest.(check bool) "error is reported" true (String.length e > 0))

let test_describe_empty_provenance () =
  let m = toy_model () in
  let ck = Checkpoint.of_model ~snapshot:mid_snapshot m in
  Alcotest.(check bool) "empty provenance is explicit" true
    (Genie_util.Tok.contains_substring ~sub:"provenance:     (none)"
       (Checkpoint.describe ck))

(* --- resume determinism -------------------------------------------------------------- *)

let uninterrupted_digest ~workers () =
  let m = toy_model () in
  Seq2seq.train ~epochs:3 ~batch:2 ~micro:1 ~workers m toy_pairs;
  Seq2seq.weight_digest m

(* Train to completion once, checkpointing at every optimizer step (in
   memory, through the full encode/decode codec so the disk path is what is
   exercised); then, for each captured step, restore a fresh model from the
   checkpoint bytes and finish the run. Every resumed future must land on
   the uninterrupted run's exact weights. *)
let test_resume_from_every_step () =
  let expected = uninterrupted_digest ~workers:0 () in
  let captured = ref [] in
  let m = toy_model () in
  Seq2seq.train ~epochs:3 ~batch:2 ~micro:1
    ~checkpoint_every:1
    ~checkpoint:(fun snap ->
      if snap.Seq2seq.snap_epoch <= 3 then
        captured :=
          Checkpoint.encode (Checkpoint.of_model ~snapshot:snap m) :: !captured)
    m toy_pairs;
  Alcotest.(check string) "checkpointing run unchanged" expected
    (Seq2seq.weight_digest m);
  let captured = List.rev !captured in
  Alcotest.(check bool) "several checkpoints captured" true
    (List.length captured >= 6);
  List.iteri
    (fun i bytes ->
      match Checkpoint.decode bytes with
      | Error e -> Alcotest.failf "checkpoint %d decode: %s" i e
      | Ok ck -> (
          match Checkpoint.restore ck with
          | Error e -> Alcotest.failf "checkpoint %d restore: %s" i e
          | Ok m' ->
              Seq2seq.train ~epochs:3 ~batch:2 ~micro:1
                ~resume:ck.Checkpoint.snapshot m' toy_pairs;
              Alcotest.(check string)
                (Printf.sprintf "resume from step %d (epoch %d pos %d)" i
                   ck.Checkpoint.snapshot.Seq2seq.snap_epoch
                   ck.Checkpoint.snapshot.Seq2seq.snap_pos)
                expected
                (Seq2seq.weight_digest m')))
    captured

(* The kill-at-step-k drill at several pool sizes: stop a run after k
   optimizer steps (the checkpoint callback fires on the stop), resume the
   checkpoint under each worker count, and require the uninterrupted
   digest. Exercises both a mid-epoch k and an epoch-boundary k. *)
let resume_after_kill ~stop_after ~workers () =
  let expected = uninterrupted_digest ~workers:0 () in
  let saved = ref None in
  let m = toy_model () in
  Seq2seq.train ~epochs:3 ~batch:2 ~micro:1 ~stop_after
    ~checkpoint:(fun snap ->
      saved := Some (Checkpoint.encode (Checkpoint.of_model ~snapshot:snap m)))
    m toy_pairs;
  let bytes =
    match !saved with
    | Some b -> b
    | None -> Alcotest.fail "stop_after fired no checkpoint"
  in
  Alcotest.(check bool) "killed run differs from finished run" true
    (Seq2seq.weight_digest m <> expected);
  match Checkpoint.decode bytes with
  | Error e -> Alcotest.failf "decode: %s" e
  | Ok ck -> (
      match Checkpoint.restore ck with
      | Error e -> Alcotest.failf "restore: %s" e
      | Ok m' ->
          Seq2seq.train ~epochs:3 ~batch:2 ~micro:1 ~workers
            ~resume:ck.Checkpoint.snapshot m' toy_pairs;
          Alcotest.(check string)
            (Printf.sprintf "kill at step %d, resume at workers=%d" stop_after
               workers)
            expected (Seq2seq.weight_digest m'))

let test_kill_resume_mid_epoch () =
  List.iter (fun w -> resume_after_kill ~stop_after:4 ~workers:w ()) [ 0; 1; 2; 4 ]

let test_kill_resume_epoch_boundary () =
  (* 6 examples / batch 2 = 3 steps per epoch; step 3 is an epoch boundary *)
  List.iter (fun w -> resume_after_kill ~stop_after:3 ~workers:w ()) [ 0; 2 ]

let test_checkpoint_cadence () =
  (* 3 epochs x 3 steps = 9 steps; every 2 steps -> steps 2,4,6,8 plus the
     terminal checkpoint after the last epoch *)
  let fired = ref [] in
  let m = toy_model () in
  Seq2seq.train ~epochs:3 ~batch:2 ~micro:1 ~checkpoint_every:2
    ~checkpoint:(fun snap -> fired := snap.Seq2seq.snap_step :: !fired)
    m toy_pairs;
  Alcotest.(check (list int)) "cadence + terminal" [ 2; 4; 6; 8; 9 ]
    (List.rev !fired)

let test_save_load_model_files () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "m.ckpt" in
      let m = toy_model () in
      Seq2seq.train ~epochs:1 ~batch:2 ~micro:1 m toy_pairs;
      Checkpoint.save_model
        ~provenance:[ ("recipe", "toy"); ("quoted", "a \"b\" c\nd") ]
        ~snapshot:mid_snapshot ~path m;
      match Checkpoint.load_model path with
      | Error e -> Alcotest.failf "load_model: %s" e
      | Ok (m', ck) ->
          Alcotest.(check string) "weights through disk"
            (Seq2seq.weight_digest m) (Seq2seq.weight_digest m');
          Alcotest.(check int) "snapshot step" mid_snapshot.Seq2seq.snap_step
            ck.Checkpoint.snapshot.Seq2seq.snap_step;
          Alcotest.(check (option string)) "provenance with escapes"
            (Some "a \"b\" c\nd")
            (List.assoc_opt "quoted" ck.Checkpoint.provenance))

let test_vocab_tokens_roundtrip () =
  let v = Vocab.of_tokens [ "b"; "a"; "c"; "a"; "b" ] in
  let v' = Vocab.of_tokens (Vocab.tokens v) in
  Alcotest.(check int) "size" (Vocab.size v) (Vocab.size v');
  List.iter
    (fun t -> Alcotest.(check int) ("id of " ^ t) (Vocab.id v t) (Vocab.id v' t))
    (Vocab.tokens v)

let test_rng_cursor_roundtrip () =
  let r = Genie_util.Rng.create 42 in
  for _ = 1 to 17 do ignore (Genie_util.Rng.int r 1000) done;
  let cur = Genie_util.Rng.cursor r in
  let future = List.init 8 (fun _ -> Genie_util.Rng.int r 1000) in
  let r' = Genie_util.Rng.create 0 in
  Genie_util.Rng.set_cursor r' cur;
  Alcotest.(check (list int)) "cursor restores the exact stream" future
    (List.init 8 (fun _ -> Genie_util.Rng.int r' 1000))

(* two kills in one run: resume, get killed again, resume again -- the
   composed futures must still land on the uninterrupted weights *)
let test_double_kill_resume () =
  let expected = uninterrupted_digest ~workers:0 () in
  let kill m ~resume ~stop_after =
    let saved = ref None in
    Seq2seq.train ~epochs:3 ~batch:2 ~micro:1 ?resume ~stop_after
      ~checkpoint:(fun snap ->
        saved := Some (Checkpoint.encode (Checkpoint.of_model ~snapshot:snap m)))
      m toy_pairs;
    match !saved with
    | Some b -> b
    | None -> Alcotest.fail "no checkpoint on kill"
  in
  let reload bytes =
    match Checkpoint.decode bytes with
    | Error e -> Alcotest.failf "decode: %s" e
    | Ok ck -> (
        match Checkpoint.restore ck with
        | Error e -> Alcotest.failf "restore: %s" e
        | Ok m -> (m, ck.Checkpoint.snapshot))
  in
  let b1 = kill (toy_model ()) ~resume:None ~stop_after:2 in
  let m2, s2 = reload b1 in
  let b2 = kill m2 ~resume:(Some s2) ~stop_after:7 in
  let m3, s3 = reload b2 in
  Seq2seq.train ~epochs:3 ~batch:2 ~micro:1 ~resume:s3 m3 toy_pairs;
  Alcotest.(check string) "kill twice, resume twice" expected
    (Seq2seq.weight_digest m3)

let test_stop_after_past_end_is_completion () =
  let expected = uninterrupted_digest ~workers:0 () in
  let last = ref None in
  let m = toy_model () in
  Seq2seq.train ~epochs:3 ~batch:2 ~micro:1 ~stop_after:1000
    ~checkpoint:(fun snap -> last := Some snap)
    m toy_pairs;
  Alcotest.(check string) "ran to completion" expected (Seq2seq.weight_digest m);
  match !last with
  | Some snap ->
      (* the terminal snapshot: epoch past the end, 9 total steps taken *)
      Alcotest.(check int) "terminal epoch" 4 snap.Seq2seq.snap_epoch;
      Alcotest.(check int) "terminal step" 9 snap.Seq2seq.snap_step
  | None -> Alcotest.fail "no terminal checkpoint"

(* --- hot-swap: server-level atomicity ------------------------------------------------ *)

let lib = Genie_thingpedia.Thingpedia.core_library ()
let parse = Parser.parse_program

let mini_dataset names =
  let mk sentence src =
    Genie_dataset.Example.make ~id:0 ~tokens:(Genie_util.Tok.tokenize sentence)
      ~program:(parse src) ~source:Genie_dataset.Example.Synthesized ()
  in
  List.concat
    (List.map
       (fun name ->
         [ mk
             (Printf.sprintf "tweet %s" name)
             (Printf.sprintf "now => @com.twitter.post(status = \"%s\");" name);
           mk
             (Printf.sprintf "show me emails from %s" name)
             (Printf.sprintf
                "now => (@com.gmail.inbox()) filter sender_name == \"%s\" => notify;"
                name);
           mk "get a cat picture" "now => @com.thecatapi.get() => notify;";
           mk "when i receive an email , get a cat picture"
             "monitor (@com.gmail.inbox()) => @com.thecatapi.get() => notify;" ])
       names)

(* Two genuinely different models: B has never seen the email or monitor
   programs, so several utterances parse differently under it. *)
let model_a =
  lazy
    (Genie_parser_model.Model.of_aligner
       (Genie_parser_model.Aligner.train lib
          (mini_dataset [ "alice"; "bob"; "carol"; "dan"; "eve"; "mallory" ])))

let model_b =
  lazy
    (Genie_parser_model.Model.of_aligner
       (Genie_parser_model.Aligner.train lib
          (List.filter
             (fun (e : Genie_dataset.Example.t) ->
               match e.Genie_dataset.Example.tokens with
               | "tweet" :: _ -> true
               | _ -> false)
             (mini_dataset [ "alice"; "bob"; "carol" ]))))

let model_digest (m : Genie_parser_model.Model.t) =
  m.Genie_parser_model.Model.digest

let utterances =
  [ "tweet alice"; "tweet bob"; "show me emails from carol"; "get a cat picture";
    "when i receive an email , get a cat picture"; "tweet dan";
    "show me emails from eve"; "tweet mallory" ]

let utterance i = List.nth utterances (i mod List.length utterances)
let request i = Request.make ~id:i (utterance i)

(* what a response claims about the model that produced it (id excluded so
   goldens can be compared across request numbering) *)
let essence (r : Response.t) =
  Printf.sprintf "%s %s %s"
    (utterance r.Response.id)
    (Response.status_to_string r.Response.status)
    (Option.value ~default:"-" r.Response.program_text)

(* per-model golden answers, computed on private sequential servers *)
let goldens model =
  let s = Server.create ~lib ~model () in
  let tbl = Hashtbl.create 16 in
  List.iteri
    (fun i u ->
      Hashtbl.replace tbl u (essence (Server.handle s (Request.make ~id:i u))))
    utterances;
  Server.shutdown s;
  tbl

let goldens_a = lazy (goldens (Lazy.force model_a))
let goldens_b = lazy (goldens (Lazy.force model_b))

let test_aligner_digest_identity () =
  let a = Lazy.force model_a and b = Lazy.force model_b in
  Alcotest.(check bool) "distinct models, distinct digests" true
    (model_digest a <> model_digest b);
  (* retraining on the same data is the same model *)
  let a' =
    Genie_parser_model.Model.of_aligner
      (Genie_parser_model.Aligner.train lib
         (mini_dataset [ "alice"; "bob"; "carol"; "dan"; "eve"; "mallory" ]))
  in
  Alcotest.(check string) "retrain reproduces the digest" (model_digest a)
    (model_digest a');
  (* goldens must actually differ somewhere, or the differential tests
     below prove nothing *)
  let ga = Lazy.force goldens_a and gb = Lazy.force goldens_b in
  Alcotest.(check bool) "models disagree on some utterance" true
    (List.exists (fun u -> Hashtbl.find ga u <> Hashtbl.find gb u) utterances)

let test_swap_invalidates_parse_cache () =
  let server = Server.create ~lib ~model:(Lazy.force model_a) () in
  List.iteri (fun i u -> ignore (Server.handle server (Request.make ~id:i u))) utterances;
  let before = Server.stats server in
  Alcotest.(check bool) "cache warmed" true (before.Server.cache_entries > 0);
  let compile_before = before.Server.compile_entries in
  (match Server.swap_model server (Lazy.force model_b) with
  | `Swapped d ->
      Alcotest.(check string) "digest is B"
        (model_digest (Lazy.force model_b))
        d
  | `Unchanged _ -> Alcotest.fail "distinct model reported unchanged");
  let after = Server.stats server in
  Alcotest.(check int) "parse cache emptied" 0 after.Server.cache_entries;
  Alcotest.(check int) "compiled programs kept" compile_before
    after.Server.compile_entries;
  Alcotest.(check int) "swap counted" 1 after.Server.swaps;
  Alcotest.(check string) "stats report the new digest"
    (model_digest (Lazy.force model_b))
    after.Server.model_digest;
  let stages = (Server.metrics_snapshot server).Metrics.stages in
  Alcotest.(check int) "swap.commit probe" 1
    (List.assoc "swap.commit" stages);
  Alcotest.(check int) "swap.cache_invalidate probe" 1
    (List.assoc "swap.cache_invalidate" stages);
  Server.shutdown server

let test_swap_noop_on_equal_digest () =
  let server = Server.create ~lib ~model:(Lazy.force model_a) () in
  List.iteri (fun i u -> ignore (Server.handle server (Request.make ~id:i u))) utterances;
  let warmed = (Server.stats server).Server.cache_entries in
  (* an equal model (fresh retrain, same data) must not disturb the caches *)
  let same =
    Genie_parser_model.Model.of_aligner
      (Genie_parser_model.Aligner.train lib
         (mini_dataset [ "alice"; "bob"; "carol"; "dan"; "eve"; "mallory" ]))
  in
  (match Server.swap_model server same with
  | `Unchanged _ -> ()
  | `Swapped _ -> Alcotest.fail "equal digest must no-op");
  let s = Server.stats server in
  Alcotest.(check int) "caches untouched" warmed s.Server.cache_entries;
  Alcotest.(check int) "no swap counted" 0 s.Server.swaps;
  Alcotest.(check int) "swap.noop probe" 1
    (List.assoc "swap.noop" ((Server.metrics_snapshot server).Metrics.stages));
  Server.shutdown server

(* The differential drill: traffic in micro-batches with a swap between two
   of them; every response must match the old model's golden before the
   swap and the new model's after — and at no point anything else (a
   mixture would mean a half-loaded model answered). Run at several pool
   sizes, optionally under a seeded fault schedule (crashes + retries must
   not let a request slip across the swap boundary with mixed weights). *)
let differential_swap ?fault ~workers () =
  let server =
    Server.create ~lib ~model:(Lazy.force model_a) ~workers ?fault
      ~max_retries:2 ~retry_backoff_ms:0.01 ()
  in
  let ga = Lazy.force goldens_a and gb = Lazy.force goldens_b in
  let check_against tbl phase (r : Response.t) =
    let want = Hashtbl.find tbl (utterance r.Response.id) in
    let got = essence r in
    if got <> want then
      Alcotest.failf "%s (workers=%d): response %d is not the %s golden:\n  want %s\n  got  %s"
        phase workers r.Response.id phase want got
  in
  let n = List.length utterances in
  (* three batches on A, swap, three batches on B *)
  for b = 0 to 2 do
    let reqs = List.init n (fun i -> request ((b * n) + i)) in
    List.iter (check_against ga "old-model") (Server.run_batch server reqs)
  done;
  (match Server.swap_model server (Lazy.force model_b) with
  | `Swapped _ -> ()
  | `Unchanged _ -> Alcotest.fail "swap did not commit");
  for b = 3 to 5 do
    let reqs = List.init n (fun i -> request ((b * n) + i)) in
    List.iter (check_against gb "new-model") (Server.run_batch server reqs)
  done;
  let s = Server.stats server in
  Alcotest.(check int) "one swap" 1 s.Server.swaps;
  Server.shutdown server

let test_differential_swap_across_pools () =
  List.iter (fun w -> differential_swap ~workers:w ()) [ 0; 2; 4 ]

let test_differential_swap_under_faults () =
  let fault =
    match Fault.of_string "seed=7,crash=0.2,crash_attempts=1,drop=0.1" with
    | Ok f -> f
    | Error e -> Alcotest.failf "fault spec: %s" e
  in
  (* faulty responses may be Error/Timeout rather than the golden text, so
     compare only the responses that completed ok *)
  let server =
    Server.create ~lib ~model:(Lazy.force model_a) ~fault ~max_retries:2
      ~retry_backoff_ms:0.01 ()
  in
  let ga = Lazy.force goldens_a and gb = Lazy.force goldens_b in
  let check tbl (r : Response.t) =
    if r.Response.status = Response.Ok then begin
      let got = essence r in
      let want = Hashtbl.find tbl (utterance r.Response.id) in
      if got <> want then
        Alcotest.failf "faulted swap: response %d mixed models:\n  want %s\n  got  %s"
          r.Response.id want got
    end
  in
  let n = List.length utterances in
  for b = 0 to 3 do
    List.iter (check ga)
      (Server.run_batch server (List.init n (fun i -> request ((b * n) + i))))
  done;
  ignore (Server.swap_model server (Lazy.force model_b));
  for b = 4 to 7 do
    List.iter (check gb)
      (Server.run_batch server (List.init n (fun i -> request ((b * n) + i))))
  done;
  Server.shutdown server

(* --- hot-swap: the daemon's Reload frame over loopback ------------------------------- *)

let test_codec_reload_roundtrip () =
  let f = Genie_net.Codec.encode Genie_net.Codec.Reload in
  let d = Genie_net.Frame.decoder () in
  Genie_net.Frame.feed d f;
  (match Genie_net.Frame.next d with
  | Ok (Some payload) -> (
      match Genie_net.Codec.decode payload with
      | Ok Genie_net.Codec.Reload -> ()
      | Ok _ -> Alcotest.fail "Reload decoded as something else"
      | Error e -> Alcotest.failf "Reload rejected: %s" e)
  | Ok None -> Alcotest.fail "Reload frame incomplete"
  | Error _ -> Alcotest.fail "Reload frame rejected")

let rec wait_for ?(tries = 400) pred =
  if tries = 0 then Alcotest.fail "timed out waiting for daemon state"
  else if not (pred ()) then begin
    Unix.sleepf 0.005;
    wait_for ~tries:(tries - 1) pred
  end

let test_daemon_reload_over_loopback () =
  let server = Server.create ~lib ~model:(Lazy.force model_a) () in
  let swapped = ref None in
  let d =
    Genie_net.Daemon.create ~server
      ~reload:(fun _ordinal -> Some (Lazy.force model_b))
      ~on_swap:(fun ~old_digest ~new_digest ->
        swapped := Some (old_digest, new_digest))
      Genie_net.Daemon.default_config
  in
  let dom = Domain.spawn (fun () -> Genie_net.Daemon.run d) in
  let ga = Lazy.force goldens_a and gb = Lazy.force goldens_b in
  let finish () =
    Genie_net.Daemon.request_drain d;
    Domain.join dom;
    Server.shutdown server
  in
  (try
     let c = Genie_net.Client.connect ~port:(Genie_net.Daemon.port d) () in
     let n = List.length utterances in
     let roundtrip tbl phase base =
       List.iter
         (fun i -> Genie_net.Client.send_request c (request (base + i)))
         (List.init n Fun.id);
       List.iter
         (fun _ ->
           let r = Genie_net.Client.recv_response c in
           let u = utterance r.Genie_net.Codec.rs_id in
           let got =
             Printf.sprintf "%s %s %s" u r.Genie_net.Codec.rs_status
               (Option.value ~default:"-" r.Genie_net.Codec.rs_program)
           in
           let want = Hashtbl.find tbl u in
           if got <> want then
             Alcotest.failf "loopback %s: response %d:\n  want %s\n  got  %s"
               phase r.Genie_net.Codec.rs_id want got)
         (List.init n Fun.id)
     in
     roundtrip ga "pre-reload" 0;
     Genie_net.Client.reload c;
     (* the swap commits between batches; wait until the loop serviced it *)
     wait_for (fun () -> !swapped <> None);
     roundtrip gb "post-reload" 100;
     (* live remote stats must carry the new identity *)
     let js = Genie_net.Client.server_stats c in
     let digest_b = model_digest (Lazy.force model_b) in
     let mentions needle hay =
       let nl = String.length needle and hl = String.length hay in
       let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
       go 0
     in
     Alcotest.(check bool) "stats json reports the swapped digest" true
       (mentions digest_b js);
     Alcotest.(check bool) "stats json counts the reload" true
       (mentions "\"reloads\":1" js);
     Genie_net.Client.close c
   with e ->
     finish ();
     raise e);
  finish ();
  (match !swapped with
  | Some (od, nd) ->
      Alcotest.(check string) "old digest" (model_digest (Lazy.force model_a)) od;
      Alcotest.(check string) "new digest" (model_digest (Lazy.force model_b)) nd
  | None -> Alcotest.fail "on_swap never fired");
  let s = Genie_net.Daemon.stats d in
  Alcotest.(check int) "reloads" 1 s.Genie_net.Daemon.reloads;
  Alcotest.(check int) "reload failures" 0 s.Genie_net.Daemon.reload_failures;
  Alcotest.(check string) "daemon stats digest"
    (model_digest (Lazy.force model_b))
    s.Genie_net.Daemon.model_digest;
  Alcotest.(check bool) "drained" true s.Genie_net.Daemon.drained

let test_daemon_reload_without_source_fails_closed () =
  let server = Server.create ~lib ~model:(Lazy.force model_a) () in
  let d = Genie_net.Daemon.create ~server Genie_net.Daemon.default_config in
  let dom = Domain.spawn (fun () -> Genie_net.Daemon.run d) in
  let c = Genie_net.Client.connect ~port:(Genie_net.Daemon.port d) () in
  Genie_net.Client.reload c;
  (* the daemon must keep serving the old model, counting the failure *)
  Genie_net.Client.send_request c (request 0);
  let r = Genie_net.Client.recv_response c in
  Alcotest.(check string) "still answers" "ok" r.Genie_net.Codec.rs_status;
  Genie_net.Client.close c;
  Genie_net.Daemon.request_drain d;
  Domain.join dom;
  Server.shutdown server;
  let s = Genie_net.Daemon.stats d in
  Alcotest.(check int) "failure counted" 1 s.Genie_net.Daemon.reload_failures;
  Alcotest.(check int) "no swap" 0 s.Genie_net.Daemon.reloads;
  Alcotest.(check string) "digest unchanged"
    (model_digest (Lazy.force model_a))
    s.Genie_net.Daemon.model_digest

let suite =
  [ test_roundtrip_qcheck;
    Alcotest.test_case "truncated files rejected" `Quick test_rejects_truncation;
    Alcotest.test_case "trailing bytes rejected" `Quick
      test_rejects_trailing_bytes;
    test_rejects_corruption;
    Alcotest.test_case "bad magic / future version rejected" `Quick
      test_rejects_bad_magic_and_version;
    Alcotest.test_case "restore never half-loads" `Quick
      test_restore_never_half_loads;
    Alcotest.test_case "restore is bitwise (weights, moments, step)" `Quick
      test_restore_bitwise;
    Alcotest.test_case "atomic save / load / overwrite" `Quick
      test_atomic_save_load;
    Alcotest.test_case "describe / inspect report" `Quick test_describe_inspect;
    Alcotest.test_case "describe with empty provenance" `Quick
      test_describe_empty_provenance;
    Alcotest.test_case "resume from every optimizer step" `Quick
      test_resume_from_every_step;
    Alcotest.test_case "kill mid-epoch, resume at 0/1/2/4 workers" `Quick
      test_kill_resume_mid_epoch;
    Alcotest.test_case "kill on an epoch boundary, resume" `Quick
      test_kill_resume_epoch_boundary;
    Alcotest.test_case "checkpoint cadence + terminal checkpoint" `Quick
      test_checkpoint_cadence;
    Alcotest.test_case "save_model / load_model through files" `Quick
      test_save_load_model_files;
    Alcotest.test_case "vocab token lists round-trip ids" `Quick
      test_vocab_tokens_roundtrip;
    Alcotest.test_case "rng cursor restores the exact stream" `Quick
      test_rng_cursor_roundtrip;
    Alcotest.test_case "kill twice, resume twice" `Quick test_double_kill_resume;
    Alcotest.test_case "stop past the end is a completed run" `Quick
      test_stop_after_past_end_is_completion;
    Alcotest.test_case "aligner digest is a model identity" `Quick
      test_aligner_digest_identity;
    Alcotest.test_case "swap invalidates parse cache, keeps compiled" `Quick
      test_swap_invalidates_parse_cache;
    Alcotest.test_case "swap no-ops on an equal digest" `Quick
      test_swap_noop_on_equal_digest;
    Alcotest.test_case "differential swap at 0/2/4 workers" `Quick
      test_differential_swap_across_pools;
    Alcotest.test_case "differential swap under a fault schedule" `Quick
      test_differential_swap_under_faults;
    Alcotest.test_case "Reload frame round-trips" `Quick
      test_codec_reload_roundtrip;
    Alcotest.test_case "daemon Reload hot-swaps over loopback" `Quick
      test_daemon_reload_over_loopback;
    Alcotest.test_case "reload without a source fails closed" `Quick
      test_daemon_reload_without_source_fails_closed ]
