(* Integration tests for the Genie pipeline (Fig. 2): end-to-end runs at small
   scale, regime differences, ablation switches, case-study plumbing. *)

open Genie_thingtalk
module Config = Genie_core.Config
module Pipeline = Genie_core.Pipeline

let lib = Genie_thingpedia.Thingpedia.core_library ()
let prims = Genie_thingpedia.Thingpedia.core_templates ()
let rules = Genie_templates.Rules_thingtalk.rules lib

let tiny = Config.scaled 0.45 Config.default

let artifacts = lazy (Pipeline.run ~cfg:tiny ~lib ~prims ~rules ())

let test_pipeline_produces_artifacts () =
  let a = Lazy.force artifacts in
  Alcotest.(check bool) "synthesized data" true (List.length a.Pipeline.synthesized > 500);
  Alcotest.(check bool) "paraphrases collected" true (List.length a.Pipeline.paraphrases > 100);
  Alcotest.(check bool) "training set built" true (List.length a.Pipeline.train > 1000);
  Alcotest.(check bool) "paraphrase test held out" true
    (List.length a.Pipeline.paraphrase_test > 10);
  Alcotest.(check bool) "lm corpus built" true (List.length a.Pipeline.lm_programs > 500)

let test_holdout_is_disjoint () =
  let a = Lazy.force artifacts in
  let combo p =
    String.concat "+"
      (List.sort_uniq compare (List.map Ast.Fn.to_string (Ast.program_functions p)))
  in
  (* no training example uses a held-out function combination *)
  List.iter
    (fun (e : Genie_dataset.Example.t) ->
      Alcotest.(check bool) "train avoids held-out combos" false
        (Hashtbl.mem a.Pipeline.held_out_combos (combo e.Genie_dataset.Example.program)))
    a.Pipeline.train;
  (* every paraphrase-test example uses one *)
  List.iter
    (fun (e : Genie_dataset.Example.t) ->
      Alcotest.(check bool) "test uses held-out combos" true
        (Hashtbl.mem a.Pipeline.held_out_combos (combo e.Genie_dataset.Example.program)))
    a.Pipeline.paraphrase_test

let test_training_set_is_well_typed () =
  let a = Lazy.force artifacts in
  List.iter
    (fun (e : Genie_dataset.Example.t) ->
      match Typecheck.check_program lib e.Genie_dataset.Example.program with
      | Ok () -> ()
      | Error err -> Alcotest.fail (Genie_dataset.Example.sentence e ^ ": " ^ err))
    a.Pipeline.train

let test_quotes_stripped () =
  let a = Lazy.force artifacts in
  List.iter
    (fun (e : Genie_dataset.Example.t) ->
      Alcotest.(check bool) "no quote tokens in training" false
        (List.mem "\"" e.Genie_dataset.Example.tokens))
    a.Pipeline.train

let test_predictor_reasonable () =
  let a = Lazy.force artifacts in
  (* parses a simple primitive correctly even at tiny scale *)
  match Pipeline.predictor a (Genie_util.Tok.tokenize "get a cat picture") with
  | Some p ->
      Alcotest.(check string) "cat api"
        "now => @com.thecatapi.get() => notify;"
        (Canonical.canonical_string lib p)
  | None -> Alcotest.fail "no parse"

let test_regime_training_sets_differ () =
  let run regime =
    Pipeline.run ~cfg:{ tiny with Config.regime } ~lib ~prims ~rules ()
  in
  let synth_only = run Config.Synthesized_only in
  let para_only = run Config.Paraphrase_only in
  Alcotest.(check bool) "synthesized-only has no paraphrases" true
    (List.for_all
       (fun (e : Genie_dataset.Example.t) ->
         e.Genie_dataset.Example.source = Genie_dataset.Example.Synthesized)
       synth_only.Pipeline.train);
  Alcotest.(check bool) "paraphrase-only has no synthesized" true
    (List.for_all
       (fun (e : Genie_dataset.Example.t) ->
         e.Genie_dataset.Example.source = Genie_dataset.Example.Paraphrase)
       para_only.Pipeline.train)

let test_baseline_has_no_expansion () =
  let baseline =
    Pipeline.run ~cfg:{ tiny with Config.regime = Config.Wang_baseline } ~lib ~prims ~rules ()
  in
  (* no parameter expansion: training set equals the pre-expansion set *)
  Alcotest.(check int) "no expanded copies"
    (List.length baseline.Pipeline.train_before_expansion)
    (List.length baseline.Pipeline.train);
  Alcotest.(check bool) "no LM corpus" true (baseline.Pipeline.lm_programs = [])

let test_ablation_configs_map () =
  let c = { Config.default with Config.ablations = [ Config.No_type_annotations ] } in
  let ac = Config.aligner_config c in
  Alcotest.(check bool) "type annotations off" false
    ac.Genie_parser_model.Aligner.options.Nn_syntax.type_annotations;
  let c2 = { Config.default with Config.ablations = [ Config.No_decoder_lm ] } in
  Alcotest.(check bool) "decoder lm off" false
    (Config.aligner_config c2).Genie_parser_model.Aligner.use_decoder_lm

let test_fig1_end_to_end () =
  let a = Lazy.force artifacts in
  let _, program, effects = Genie_core.Experiments.fig1_end_to_end a in
  (match program with
  | Some p ->
      Alcotest.(check bool) "well-typed parse" true (Typecheck.well_typed lib p);
      let fns = List.map Ast.Fn.to_string (Ast.program_functions p) in
      (* at this tiny training scale the parse may be imperfect, but it must
         land in the right domain *)
      Alcotest.(check bool) "mentions the cat api or facebook" true
        (List.mem "@com.thecatapi.get" fns
        || List.exists (fun f -> Genie_util.Tok.starts_with ~prefix:"@com.facebook" f) fns)
  | None -> Alcotest.fail "fig1 did not parse");
  ignore effects

let test_fig7_characteristics () =
  let c = Genie_core.Experiments.fig7 (Lazy.force artifacts) in
  Alcotest.(check bool) "has primitives and compounds" true
    (c.Genie_dataset.Stats.primitive > 0.0
    && c.Genie_dataset.Stats.compound
       +. c.Genie_dataset.Stats.compound_with_param_passing
       +. c.Genie_dataset.Stats.compound_with_filters
       > 0.0)

let test_synthesis_stats () =
  let s = Genie_core.Experiments.synthesis_stats (Lazy.force artifacts) in
  Alcotest.(check bool) "augmentation grows the vocabulary" true
    (s.Genie_core.Experiments.words_after_augmentation
    > s.Genie_core.Experiments.words_synthesized);
  Alcotest.(check bool) "paraphrasing grows the vocabulary" true
    (s.Genie_core.Experiments.words_after_paraphrase
    > s.Genie_core.Experiments.words_synthesized);
  Alcotest.(check bool) "paraphrases add words on average" true
    (s.Genie_core.Experiments.new_words_per_paraphrase > 0.0)

let test_tacl_case_study_plumbing () =
  (* one miniature TACL training run end-to-end *)
  let tacl_lib = Genie_core.Case_studies.tacl_library () in
  let _, encoded = Genie_core.Case_studies.tacl_pipeline ~cfg:tiny ~lib:tacl_lib ~prims 5 in
  Alcotest.(check bool) "policies synthesized and encoded" true (List.length encoded > 50);
  List.iter
    (fun (_, p) ->
      Alcotest.(check bool) "encoded policy type-checks" true (Typecheck.well_typed tacl_lib p);
      Alcotest.(check bool) "encoding decodes back" true
        (Genie_templates.Rules_tacl.decode p <> None))
    encoded

let suite =
  [ Alcotest.test_case "pipeline produces artifacts" `Slow test_pipeline_produces_artifacts;
    Alcotest.test_case "holdout disjoint from training" `Slow test_holdout_is_disjoint;
    Alcotest.test_case "training set well-typed" `Slow test_training_set_is_well_typed;
    Alcotest.test_case "quotes stripped" `Slow test_quotes_stripped;
    Alcotest.test_case "predictor parses a primitive" `Slow test_predictor_reasonable;
    Alcotest.test_case "regimes build different sets" `Slow test_regime_training_sets_differ;
    Alcotest.test_case "baseline has no augmentation" `Slow test_baseline_has_no_expansion;
    Alcotest.test_case "ablation config mapping" `Quick test_ablation_configs_map;
    Alcotest.test_case "fig1 end to end" `Slow test_fig1_end_to_end;
    Alcotest.test_case "fig7 characteristics" `Slow test_fig7_characteristics;
    Alcotest.test_case "synthesis statistics" `Slow test_synthesis_stats;
    Alcotest.test_case "tacl case-study plumbing" `Slow test_tacl_case_study_plumbing ]
