(* Tests for canonicalization (section 2.4): the transformation rules, and
   property tests (idempotence, type preservation, semantic preservation)
   over a pool of synthesized programs. *)

open Genie_thingtalk

let lib = Genie_thingpedia.Thingpedia.core_library ()
let parse = Parser.parse_program
let canon p = Canonical.canonical_string lib p

let equal_canon a b = Alcotest.(check string) "canonically equal" (canon (parse a)) (canon (parse b))

let test_join_commutative () =
  (* joins without parameter passing are commutative; operands are ordered
     lexically *)
  equal_canon "now => @com.bbc.get_news() join @com.nytimes.get_front_page() => notify;"
    "now => @com.nytimes.get_front_page() join @com.bbc.get_news() => notify;"

let test_join_with_passing_not_commuted () =
  let a =
    parse
      "now => @com.nytimes.get_front_page() join @com.yandex.translate.translate() on \
       (text = title) => notify;"
  in
  match (Canonical.normalize lib a).Ast.query with
  | Some (Ast.Q_join (Ast.Q_invoke l, _, _)) ->
      Alcotest.(check string) "left operand preserved" "@com.nytimes.get_front_page"
        (Ast.Fn.to_string l.Ast.fn)
  | _ -> Alcotest.fail "expected join"

let test_nested_filters_merge () =
  (* nested filter applications collapse to a single && filter *)
  equal_canon
    "now => ((@com.gmail.inbox()) filter sender_name == \"a\") filter is_important == \
     true => notify;"
    "now => (@com.gmail.inbox()) filter sender_name == \"a\" && is_important == true => \
     notify;"

let test_conjunct_order () =
  equal_canon
    "now => (@com.gmail.inbox()) filter is_important == true && sender_name == \"a\" => \
     notify;"
    "now => (@com.gmail.inbox()) filter sender_name == \"a\" && is_important == true => \
     notify;"

let test_predicate_simplification () =
  equal_canon
    "now => (@com.gmail.inbox()) filter sender_name == \"a\" && true => notify;"
    "now => (@com.gmail.inbox()) filter sender_name == \"a\" => notify;";
  (* duplicate conjuncts collapse *)
  equal_canon
    "now => (@com.gmail.inbox()) filter sender_name == \"a\" && sender_name == \"a\" => \
     notify;"
    "now => (@com.gmail.inbox()) filter sender_name == \"a\" => notify;"

let test_negation_pushed () =
  (* !(x == v) canonicalizes to x != v *)
  equal_canon
    "now => (@com.dropbox.list_folder()) filter !(is_folder == true) => notify;"
    "now => (@com.dropbox.list_folder()) filter is_folder != true => notify;";
  (* !(a < b) becomes a >= b *)
  equal_canon
    "now => (@com.dropbox.list_folder()) filter !(file_size < 10MB) => notify;"
    "now => (@com.dropbox.list_folder()) filter file_size >= 10MB => notify;"

let test_cnf_distribution () =
  (* a || (b && c) distributes to (a || b) && (a || c) *)
  let p =
    parse
      "now => (@com.gmail.inbox()) filter sender_name == \"a\" || (is_important == true \
       && subject == \"x\") => notify;"
  in
  let n = Canonical.normalize lib p in
  match Ast.program_predicates n with
  | [ Ast.P_and [ Ast.P_or _; Ast.P_or _ ] ] -> ()
  | _ -> Alcotest.fail ("expected CNF with two clauses: " ^ Printer.program_to_string n)

let test_input_params_alphabetical () =
  equal_canon
    "now => @com.facebook.post_picture(picture_url = \"http://x\", caption = \"c\");"
    "now => @com.facebook.post_picture(caption = \"c\", picture_url = \"http://x\");"

let test_filter_pushed_to_operand () =
  (* a filter over a join moves to the left-most operand that covers it *)
  let p =
    parse
      "now => (@com.nytimes.get_front_page() join @com.yandex.translate.translate() on \
       (text = title)) filter section == \"world\" => notify;"
  in
  match (Canonical.normalize lib p).Ast.query with
  | Some (Ast.Q_join (Ast.Q_filter _, _, _)) -> ()
  | Some q -> Alcotest.fail ("filter not pushed: " ^ Printer.query_to_string q)
  | None -> Alcotest.fail "expected query"

let test_on_new_sorted () =
  equal_canon "monitor (@com.dropbox.list_folder()) on new [modified_time, file_name] => notify;"
    "monitor (@com.dropbox.list_folder()) on new [file_name, modified_time] => notify;"

(* --- property tests over synthesized programs -------------------------------------- *)

let program_pool =
  lazy
    (let prims = Genie_thingpedia.Thingpedia.core_templates () in
     let rules = Genie_templates.Rules_thingtalk.rules lib in
     let g =
       Genie_templates.Grammar.create lib ~prims ~rules
         ~rng:(Genie_util.Rng.create 77) ()
     in
     List.map snd
       (Genie_synthesis.Engine.synthesize g
          { Genie_synthesis.Engine.default_config with
            seed = 77;
            target_per_rule = 60;
            max_depth = 4 }))

let arbitrary_program =
  QCheck.make
    (QCheck.Gen.oneofl (Lazy.force program_pool))
    ~print:(fun p -> Printer.program_to_string p)

let qcheck_idempotent =
  QCheck.Test.make ~name:"canonicalization is idempotent" ~count:200 arbitrary_program
    (fun p ->
      let once = Canonical.normalize lib p in
      let twice = Canonical.normalize lib once in
      Printer.program_to_string once = Printer.program_to_string twice)

let qcheck_preserves_types =
  QCheck.Test.make ~name:"canonicalization preserves well-typedness" ~count:200
    arbitrary_program (fun p ->
      Typecheck.well_typed lib p = Typecheck.well_typed lib (Canonical.normalize lib p))

let qcheck_preserves_functions =
  QCheck.Test.make ~name:"canonicalization preserves the function multiset" ~count:200
    arbitrary_program (fun p ->
      let fns q = List.sort compare (List.map Ast.Fn.to_string (Ast.program_functions q)) in
      fns p = fns (Canonical.normalize lib p))

let qcheck_now_semantics_preserved =
  (* semantic preservation checked on the runtime: canonicalized now-commands
     produce the same notifications *)
  QCheck.Test.make ~name:"canonicalization preserves now-command semantics" ~count:60
    arbitrary_program (fun p ->
      match p.Ast.stream with
      | Ast.S_now ->
          let run q =
            let env = Genie_runtime.Exec.create ~seed:5 lib in
            try
              let notifications, effects = Genie_runtime.Exec.run ~ticks:1 env q in
              Some (List.length notifications, List.length effects)
            with Genie_runtime.Exec.Runtime_error _ -> None
          in
          run p = run (Canonical.normalize lib p)
      | _ -> QCheck.assume_fail ())

let qcheck_parse_print_roundtrip =
  QCheck.Test.make ~name:"surface print/parse roundtrip on canonical programs" ~count:200
    arbitrary_program (fun p ->
      let c = Canonical.normalize lib p in
      Parser.parse_program (Printer.program_to_string c) = c)

let suite =
  [ Alcotest.test_case "join commutativity" `Quick test_join_commutative;
    Alcotest.test_case "join with passing keeps order" `Quick test_join_with_passing_not_commuted;
    Alcotest.test_case "nested filters merge" `Quick test_nested_filters_merge;
    Alcotest.test_case "conjunct order" `Quick test_conjunct_order;
    Alcotest.test_case "predicate simplification" `Quick test_predicate_simplification;
    Alcotest.test_case "negation pushed into ops" `Quick test_negation_pushed;
    Alcotest.test_case "CNF distribution" `Quick test_cnf_distribution;
    Alcotest.test_case "input params alphabetical" `Quick test_input_params_alphabetical;
    Alcotest.test_case "filter pushed to operand" `Quick test_filter_pushed_to_operand;
    Alcotest.test_case "on-new fields sorted" `Quick test_on_new_sorted;
    QCheck_alcotest.to_alcotest qcheck_idempotent;
    QCheck_alcotest.to_alcotest qcheck_preserves_types;
    QCheck_alcotest.to_alcotest qcheck_preserves_functions;
    QCheck_alcotest.to_alcotest qcheck_now_semantics_preserved;
    QCheck_alcotest.to_alcotest qcheck_parse_print_roundtrip ]
