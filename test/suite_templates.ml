(* Tests for the NL-template grammar: terminal generation, construct-template
   semantic functions (including bottom-rejection), TACL and TT+A rules. *)

open Genie_thingtalk
open Genie_templates

let lib = Genie_thingpedia.Thingpedia.core_library ()
let prims = Genie_thingpedia.Thingpedia.core_templates ()
let rules = Rules_thingtalk.rules lib

let grammar =
  lazy (Grammar.create lib ~prims ~rules ~rng:(Genie_util.Rng.create 31) ())

let terminals cat = Grammar.terminals (Lazy.force grammar) cat

let test_terminal_categories_populated () =
  List.iter
    (fun cat ->
      Alcotest.(check bool) ("terminals for " ^ cat) true (terminals cat <> []))
    [ "np"; "vp"; "wp"; "qvp"; "pred"; "epred"; "time"; "interval"; "np_fun"; "vp_fun" ]

let test_np_terminals_are_queries () =
  List.iter
    (fun d ->
      Alcotest.(check bool) "np holds a query" true (Grammar.as_query d <> None))
    (terminals "np")

let test_vp_terminals_are_actions () =
  List.iter
    (fun d ->
      Alcotest.(check bool) "vp holds an action" true (Grammar.as_action d <> None))
    (terminals "vp")

let test_wp_terminals_are_streams () =
  List.iter
    (fun d ->
      Alcotest.(check bool) "wp holds a stream" true (Grammar.as_stream d <> None))
    (terminals "wp")

let test_fun_terminals_have_holes () =
  List.iter
    (fun (d : Derivation.t) ->
      Alcotest.(check bool) "hole token present" true
        (List.mem Derivation.hole_token d.Derivation.tokens);
      match d.Derivation.value with
      | Derivation.V_fun _ -> ()
      | _ -> Alcotest.fail "expected functional derivation")
    (terminals "np_fun" @ terminals "vp_fun")

(* --- semantic functions -------------------------------------------------------- *)

let np_of src =
  { Derivation.tokens = [ "x" ];
    value =
      Derivation.V_frag
        (Ast.F_query
           (match (Parser.parse_program src).Ast.query with
           | Some q -> q
           | None -> failwith "expected query"));
    depth = 0;
    fns = [] }

let test_monitor_rejects_non_monitorable () =
  let rule =
    List.find (fun (r : Grammar.rule) -> r.Grammar.name = "wp_monitor_np") rules
  in
  (* the cat api changes constantly and cannot be monitored: the semantic
     function returns bottom, as in the paper's example *)
  let cat = np_of "now => @com.thecatapi.get() => notify;" in
  Alcotest.(check bool) "rejected" true (rule.Grammar.sem [ cat ] = None);
  let inbox = np_of "now => @com.gmail.inbox() => notify;" in
  Alcotest.(check bool) "accepted" true (rule.Grammar.sem [ inbox ] <> None)

let test_list_rule_rejects_single () =
  let rule = List.find (fun (r : Grammar.rule) -> r.Grammar.name = "cmd_list_np") rules in
  let single = np_of "now => @com.dropbox.get_space_usage() => notify;" in
  Alcotest.(check bool) "single rejected" true (rule.Grammar.sem [ single ] = None);
  let lst = np_of "now => @com.dropbox.list_folder() => notify;" in
  Alcotest.(check bool) "list accepted" true (rule.Grammar.sem [ lst ] <> None)

let test_filter_rule_typechecks () =
  let rule = List.find (fun (r : Grammar.rule) -> r.Grammar.name = "np_filter") rules in
  let inbox = np_of "now => @com.gmail.inbox() => notify;" in
  let good_pred =
    { Derivation.tokens = [ "from"; "alice" ];
      value =
        Derivation.V_frag
          (Ast.F_predicate
             (Ast.P_atom { lhs = "sender_name"; op = Ast.Op_eq; rhs = Value.String "alice" }));
      depth = 0;
      fns = [] }
  in
  Alcotest.(check bool) "compatible filter accepted" true
    (rule.Grammar.sem [ inbox; good_pred ] <> None);
  let bad_pred =
    { good_pred with
      Derivation.value =
        Derivation.V_frag
          (Ast.F_predicate
             (Ast.P_atom { lhs = "tempo"; op = Ast.Op_gt; rhs = Value.Number 1.0 })) }
  in
  Alcotest.(check bool) "incompatible filter rejected" true
    (rule.Grammar.sem [ inbox; bad_pred ] = None)

let test_hole_substitution () =
  (* "the download url of <my dropbox files>" becomes a join with parameter
     passing *)
  let rule = List.find (fun (r : Grammar.rule) -> r.Grammar.name = "np_apply_fun") rules in
  let fun_d =
    List.find
      (fun (d : Derivation.t) ->
        match d.Derivation.value with
        | Derivation.V_fun { inv; _ } -> inv.Ast.fn.Ast.Fn.name = "open"
        | _ -> false)
      (terminals "np_fun")
  in
  let files = np_of "now => @com.dropbox.list_folder() => notify;" in
  match rule.Grammar.sem [ fun_d; files ] with
  | Some { Grammar.value = Derivation.V_frag (Ast.F_query (Ast.Q_join (_, _, on))); tokens_override = Some toks } ->
      Alcotest.(check bool) "parameter passing present" true (on <> []);
      Alcotest.(check bool) "hole replaced" true
        (not (List.mem Derivation.hole_token toks))
  | _ -> Alcotest.fail "expected a join with substituted tokens"

(* --- TACL ------------------------------------------------------------------------ *)

let tacl_lib =
  Schema.Library.of_classes
    (Genie_thingpedia.Thingpedia.core_classes @ [ Rules_tacl.policy_class ])

let test_tacl_encode_decode () =
  let policies =
    [ "source source == \"alice\"^^tt:contact : now => @com.gmail.inbox() => notify;";
      "source true : now => @com.twitter.post(status = \"x\");";
      "source source == \"bob\"^^tt:contact : now => (@com.gmail.inbox()) filter \
       is_important == true => notify;" ]
  in
  List.iter
    (fun src ->
      let pol = Parser.parse_policy src in
      let encoded = Rules_tacl.encode pol in
      Alcotest.(check bool) ("encoding type-checks: " ^ src) true
        (Typecheck.well_typed tacl_lib encoded);
      match Rules_tacl.decode encoded with
      | Some pol2 ->
          Alcotest.(check string) ("roundtrip: " ^ src)
            (Printer.policy_to_string pol)
            (Printer.policy_to_string pol2)
      | None -> Alcotest.fail ("decode failed: " ^ src))
    policies

let test_tacl_decode_rejects_ordinary_programs () =
  let p = Parser.parse_program "now => @com.gmail.inbox() => notify;" in
  Alcotest.(check bool) "not a policy" true (Rules_tacl.decode p = None)

let test_tacl_rules_produce_policies () =
  let g =
    Grammar.create tacl_lib ~prims
      ~rules:(Rules_tacl.rules tacl_lib)
      ~rng:(Genie_util.Rng.create 41)
      ~start:"policy"
      ~extra_terminals:
        [ ("person", Rules_tacl.person_terminals (Genie_util.Rng.create 41) ~samples:1) ]
      ()
  in
  let policies =
    Genie_synthesis.Engine.synthesize_policies g
      { Genie_synthesis.Engine.default_config with target_per_rule = 20; max_depth = 2 }
  in
  Alcotest.(check bool) "policies synthesized" true (List.length policies > 10);
  List.iter
    (fun (_, pol) ->
      match Typecheck.check_policy tacl_lib pol with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    policies

(* --- TT+A --------------------------------------------------------------------------- *)

let test_agg_rules () =
  let agg_rules = Rules_agg.rules lib in
  Alcotest.(check int) "six aggregation templates" 6 (List.length agg_rules);
  let rule = List.find (fun (r : Grammar.rule) -> r.Grammar.name = "agg_total") agg_rules in
  let files = np_of "now => @com.dropbox.list_folder() => notify;" in
  let field ok_name =
    { Derivation.tokens = [ "file"; "size" ];
      value = Derivation.V_frag (Ast.F_value (Value.String ok_name));
      depth = 0;
      fns = [] }
  in
  (match rule.Grammar.sem [ field "file_size"; files ] with
  | Some { Grammar.value = Derivation.V_frag (Ast.F_query (Ast.Q_aggregate { op = Ast.Agg_sum; field = Some "file_size"; _ })); _ } -> ()
  | _ -> Alcotest.fail "expected sum aggregation");
  (* non-numeric fields are rejected *)
  Alcotest.(check bool) "non-numeric rejected" true
    (rule.Grammar.sem [ field "file_name"; files ] = None);
  (* fields of other functions are rejected *)
  Alcotest.(check bool) "foreign field rejected" true
    (rule.Grammar.sem [ field "tempo"; files ] = None)

let test_agg_count_requires_list () =
  let agg_rules = Rules_agg.rules lib in
  let rule = List.find (fun (r : Grammar.rule) -> r.Grammar.name = "agg_count") agg_rules in
  let single = np_of "now => @com.dropbox.get_space_usage() => notify;" in
  Alcotest.(check bool) "count of single rejected" true (rule.Grammar.sem [ single ] = None)

let suite =
  [ Alcotest.test_case "terminal categories populated" `Quick
      test_terminal_categories_populated;
    Alcotest.test_case "np terminals are queries" `Quick test_np_terminals_are_queries;
    Alcotest.test_case "vp terminals are actions" `Quick test_vp_terminals_are_actions;
    Alcotest.test_case "wp terminals are streams" `Quick test_wp_terminals_are_streams;
    Alcotest.test_case "functional terminals have holes" `Quick
      test_fun_terminals_have_holes;
    Alcotest.test_case "monitor rejects non-monitorable" `Quick
      test_monitor_rejects_non_monitorable;
    Alcotest.test_case "list rule rejects single results" `Quick test_list_rule_rejects_single;
    Alcotest.test_case "filter rule type-checks" `Quick test_filter_rule_typechecks;
    Alcotest.test_case "hole substitution builds joins" `Quick test_hole_substitution;
    Alcotest.test_case "tacl encode/decode" `Quick test_tacl_encode_decode;
    Alcotest.test_case "tacl decode rejects programs" `Quick
      test_tacl_decode_rejects_ordinary_programs;
    Alcotest.test_case "tacl rules synthesize policies" `Quick
      test_tacl_rules_produce_policies;
    Alcotest.test_case "aggregation rules" `Quick test_agg_rules;
    Alcotest.test_case "count requires a list" `Quick test_agg_count_requires_list ]
