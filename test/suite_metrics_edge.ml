(* Edge cases for the metrics subsystem: empty and single-sample snapshots
   (no NaNs, sane percentiles), the outcome-partition invariant under every
   counter path, and a cross-domain stress test of the atomic counters the
   histogram is built on. *)

open Genie_serve

let check_partition msg (s : Metrics.snapshot) =
  Alcotest.(check int) msg s.Metrics.requests
    (s.Metrics.ok + s.Metrics.no_parse + s.Metrics.errors + s.Metrics.timeouts
   + s.Metrics.shed)

let finite msg f =
  Alcotest.(check bool) msg true (Float.is_finite f);
  Alcotest.(check bool) (msg ^ " not nan") false (Float.is_nan f)

let test_empty_snapshot () =
  let m = Metrics.create () in
  let s = Metrics.snapshot m in
  Alcotest.(check int) "no requests" 0 s.Metrics.requests;
  (* an empty histogram must not produce NaN from 0/0 divisions *)
  finite "mean" s.Metrics.mean_ms;
  finite "p50" s.Metrics.p50_ms;
  finite "p95" s.Metrics.p95_ms;
  finite "p99" s.Metrics.p99_ms;
  Alcotest.(check (float 0.0)) "mean zero" 0.0 s.Metrics.mean_ms;
  Alcotest.(check (float 0.0)) "p50 zero" 0.0 s.Metrics.p50_ms;
  Alcotest.(check (float 0.0)) "p99 zero" 0.0 s.Metrics.p99_ms;
  Alcotest.(check (float 0.0)) "percentile_ns zero" 0.0 (Metrics.percentile_ns m 99.0);
  check_partition "empty partition" s;
  (* pretty-printing an empty snapshot is safe and NaN-free *)
  let rendered = Format.asprintf "%a" Metrics.pp_snapshot s in
  Alcotest.(check bool) "renders" true (String.length rendered > 0);
  Alcotest.(check bool) "no nan in output" false
    (List.exists
       (fun i -> i + 3 <= String.length rendered && String.sub rendered i 3 = "nan")
       (List.init (String.length rendered) Fun.id))

let test_single_sample () =
  let m = Metrics.create () in
  Metrics.record m ~latency_ns:5e6 ();
  let s = Metrics.snapshot m in
  Alcotest.(check int) "one request" 1 s.Metrics.requests;
  Alcotest.(check int) "one ok" 1 s.Metrics.ok;
  (* with a single sample every percentile lands in the same bucket *)
  Alcotest.(check (float 0.0)) "p50 = p95" s.Metrics.p50_ms s.Metrics.p95_ms;
  Alcotest.(check (float 0.0)) "p95 = p99" s.Metrics.p95_ms s.Metrics.p99_ms;
  (* and within the geometric bucket's ~12% relative error of the sample *)
  Alcotest.(check bool) "p50 near 5ms" true
    (s.Metrics.p50_ms > 4.0 && s.Metrics.p50_ms < 6.5);
  Alcotest.(check bool) "mean near 5ms" true
    (s.Metrics.mean_ms > 4.0 && s.Metrics.mean_ms < 6.5);
  check_partition "single-sample partition" s

let test_outcome_counters_partition () =
  let m = Metrics.create () in
  Metrics.record m ~latency_ns:1e6 ();
  Metrics.record m ~outcome:`Ok ~latency_ns:1e6 ();
  Metrics.record m ~outcome:`No_parse ~latency_ns:1e6 ();
  Metrics.record m ~outcome:`Error ~latency_ns:1e6 ();
  Metrics.record m ~outcome:`Timeout ~latency_ns:1e6 ();
  Metrics.incr_shed m;
  Metrics.incr_retries m;
  Metrics.incr_degraded m;
  Metrics.incr_exec_runs m;
  let s = Metrics.snapshot m in
  Alcotest.(check int) "requests" 6 s.Metrics.requests;
  Alcotest.(check int) "ok" 2 s.Metrics.ok;
  Alcotest.(check int) "no_parse" 1 s.Metrics.no_parse;
  Alcotest.(check int) "errors" 1 s.Metrics.errors;
  Alcotest.(check int) "timeouts" 1 s.Metrics.timeouts;
  Alcotest.(check int) "shed" 1 s.Metrics.shed;
  Alcotest.(check int) "retries orthogonal" 1 s.Metrics.retries;
  Alcotest.(check int) "degraded orthogonal" 1 s.Metrics.degraded;
  Alcotest.(check int) "exec orthogonal" 1 s.Metrics.exec_runs;
  check_partition "all-outcomes partition" s;
  Metrics.reset m;
  let z = Metrics.snapshot m in
  Alcotest.(check int) "reset requests" 0 z.Metrics.requests;
  Alcotest.(check int) "reset shed" 0 z.Metrics.shed;
  check_partition "reset partition" z

let test_shed_excluded_from_histogram () =
  let m = Metrics.create () in
  for _ = 1 to 10 do Metrics.incr_shed m done;
  let s = Metrics.snapshot m in
  Alcotest.(check int) "requests counted" 10 s.Metrics.requests;
  Alcotest.(check int) "all shed" 10 s.Metrics.shed;
  (* shed responses do no work, so the latency histogram stays empty *)
  Alcotest.(check (float 0.0)) "no latency samples" 0.0 s.Metrics.p99_ms;
  finite "mean stays finite" s.Metrics.mean_ms;
  Alcotest.(check (float 0.0)) "mean zero" 0.0 s.Metrics.mean_ms;
  check_partition "shed-only partition" s

(* --- exact small-sample quantiles ------------------------------------------------- *)

(* The first 64 latency samples are kept verbatim, so small-sample snapshots
   report exact nearest-rank percentiles instead of geometric-bucket
   midpoints. *)

let test_exact_quantiles_three_samples () =
  let m = Metrics.create () in
  (* insertion order must not matter *)
  List.iter (fun ms -> Metrics.record m ~latency_ns:(ms *. 1e6) ()) [ 3.0; 1.0; 2.0 ];
  let s = Metrics.snapshot m in
  Alcotest.(check (float 0.0)) "p50 exactly the median" 2.0 s.Metrics.p50_ms;
  Alcotest.(check (float 0.0)) "p95 exactly the max" 3.0 s.Metrics.p95_ms;
  Alcotest.(check (float 0.0)) "p99 exactly the max" 3.0 s.Metrics.p99_ms;
  Alcotest.(check (float 1e-9)) "mean exact" 2.0 s.Metrics.mean_ms

let test_exact_quantiles_single_sample () =
  let m = Metrics.create () in
  Metrics.record m ~latency_ns:5e6 ();
  let s = Metrics.snapshot m in
  Alcotest.(check (float 0.0)) "p50 is the sample itself" 5.0 s.Metrics.p50_ms;
  Alcotest.(check (float 0.0)) "p99 is the sample itself" 5.0 s.Metrics.p99_ms

let test_exact_quantiles_sub_microsecond () =
  (* below the histogram's 1 µs base every sample collapses into bucket 0;
     the raw window still resolves them exactly *)
  let m = Metrics.create () in
  List.iter (fun ns -> Metrics.record m ~latency_ns:ns ()) [ 100.0; 200.0; 900.0 ];
  Alcotest.(check (float 0.0)) "p50 = 200 ns" 200.0 (Metrics.percentile_ns m 50.0);
  Alcotest.(check (float 0.0)) "p99 = 900 ns" 900.0 (Metrics.percentile_ns m 99.0)

let test_exact_quantiles_window_boundary () =
  let m = Metrics.create () in
  (* exactly at capacity: still exact (1..64 ms) *)
  for i = 1 to 64 do
    Metrics.record m ~latency_ns:(float_of_int i *. 1e6) ()
  done;
  Alcotest.(check (float 0.0)) "p50 exact at the boundary" 32.0
    (Metrics.snapshot m).Metrics.p50_ms;
  Alcotest.(check (float 0.0)) "p99 exact at the boundary" 64.0
    (Metrics.snapshot m).Metrics.p99_ms;
  (* the 65th sample spills into the histogram: still monotone and within
     the geometric buckets' ~12% relative error, but no longer exact *)
  Metrics.record m ~latency_ns:65e6 ();
  let s = Metrics.snapshot m in
  Alcotest.(check bool) "p50 near the median after overflow" true
    (s.Metrics.p50_ms > 28.0 && s.Metrics.p50_ms < 38.0);
  Alcotest.(check bool) "p99 near the max after overflow" true
    (s.Metrics.p99_ms > 55.0 && s.Metrics.p99_ms < 75.0);
  check_partition "overflowed partition" s;
  (* reset clears the raw window too: fresh samples are exact again *)
  Metrics.reset m;
  Metrics.record m ~latency_ns:7e6 ();
  Alcotest.(check (float 0.0)) "exact again after reset" 7.0
    (Metrics.snapshot m).Metrics.p50_ms

let test_atomic_counter_basics () =
  let c = Genie_util.Atomic_counter.create ~value:5 () in
  Genie_util.Atomic_counter.incr c;
  Genie_util.Atomic_counter.add c 10;
  Genie_util.Atomic_counter.add c (-4);
  Alcotest.(check int) "arithmetic" 12 (Genie_util.Atomic_counter.get c);
  Genie_util.Atomic_counter.reset c;
  Alcotest.(check int) "reset" 0 (Genie_util.Atomic_counter.get c)

let test_atomic_counter_cross_domain_stress () =
  let domains = 4 and per_domain = 25_000 in
  let c = Genie_util.Atomic_counter.create () in
  let bump () =
    for i = 1 to per_domain do
      if i mod 10 = 0 then Genie_util.Atomic_counter.add c 3
      else Genie_util.Atomic_counter.incr c
    done
  in
  let spawned = List.init (domains - 1) (fun _ -> Domain.spawn bump) in
  bump ();
  List.iter Domain.join spawned;
  (* every increment lands: 9 incr + one add 3 per block of 10 iterations *)
  let expected = domains * (per_domain / 10) * (9 + 3) in
  Alcotest.(check int) "exact sum, no lost updates" expected
    (Genie_util.Atomic_counter.get c)

let suite =
  [ Alcotest.test_case "empty snapshot has no NaN" `Quick test_empty_snapshot;
    Alcotest.test_case "single-sample histogram" `Quick test_single_sample;
    Alcotest.test_case "outcome counters partition" `Quick
      test_outcome_counters_partition;
    Alcotest.test_case "shed excluded from histogram" `Quick
      test_shed_excluded_from_histogram;
    Alcotest.test_case "exact quantiles: three samples" `Quick
      test_exact_quantiles_three_samples;
    Alcotest.test_case "exact quantiles: single sample" `Quick
      test_exact_quantiles_single_sample;
    Alcotest.test_case "exact quantiles: sub-microsecond" `Quick
      test_exact_quantiles_sub_microsecond;
    Alcotest.test_case "exact quantiles: window boundary" `Quick
      test_exact_quantiles_window_boundary;
    Alcotest.test_case "atomic counter basics" `Quick test_atomic_counter_basics;
    Alcotest.test_case "atomic counter cross-domain stress" `Quick
      test_atomic_counter_cross_domain_stress ]
