(* Tests for the NN token syntax: serialization, deserialization, named
   constants (NUMBER_0 / DATE_0 / TIME_0), quoted spans, and the serializer
   options used by the Table 3 ablations. *)

open Genie_thingtalk

let lib = Genie_thingpedia.Thingpedia.core_library ()
let parse = Parser.parse_program

let roundtrip ?options ?entities p =
  Nn_syntax.of_tokens ?options ?entities lib (Nn_syntax.to_tokens ?options ?entities lib p)

let check_roundtrip ?options ?entities src =
  let p = Canonical.normalize lib (parse src) in
  let p2 = roundtrip ?options ?entities p in
  Alcotest.(check string) ("nn roundtrip: " ^ src)
    (Canonical.canonical_string lib p)
    (Canonical.canonical_string lib p2)

let test_roundtrips () =
  List.iter check_roundtrip
    [ "now => @com.gmail.inbox() => notify;";
      "now => (@com.gmail.inbox()) filter sender_name == \"alice\" => notify;";
      "monitor (@com.twitter.timeline()) => @com.twitter.retweet(tweet_id = tweet_id);";
      "now => @com.thecatapi.get() => @com.facebook.post_picture(picture_url = \
       picture_url, caption = \"funny cat\");";
      "edge (monitor (@org.thingpedia.weather.current(location = location(\"paris\")))) \
       on temperature < 60F => notify;";
      "attimer time = time(8,30) => @com.twitter.post(status = \"gm\");";
      "timer base = $now interval = 30min => notify;";
      "now => agg sum file_size of (@com.dropbox.list_folder()) => notify;";
      "now => agg count of (@com.gmail.inbox()) => notify;";
      "now => (@com.twitter.timeline()) filter hashtags contains \"cats\"^^tt:hashtag => \
       notify;";
      "now => (@com.gmail.inbox()) filter (sender_name == \"a\" || sender_name == \"b\") \
       && is_important == true => notify;";
      "monitor (@com.dropbox.list_folder()) on new [file_name] => notify;";
      "now => @com.nytimes.get_front_page() join @com.yandex.translate.translate() on \
       (text = title) => notify;" ]

let test_quoted_span () =
  let p = parse "now => @com.twitter.post(status = \"hello big world\");" in
  let toks = Nn_syntax.to_tokens lib p in
  Alcotest.(check bool) "words are separate tokens" true
    (List.mem "hello" toks && List.mem "big" toks && List.mem "world" toks);
  Alcotest.(check bool) "quote markers present" true (List.mem "\"" toks)

let test_named_constants () =
  (* a NUMBER_0 slot resolves through the entity map, as the argument
     identifier produces it *)
  let entities = [ ("NUMBER_0", Value.Number 42.0) ] in
  let p = parse "now => @com.lg.tv.set_volume(volume = 42);" in
  let toks = Nn_syntax.to_tokens ~entities lib p in
  Alcotest.(check bool) "slot token emitted" true (List.mem "NUMBER_0" toks);
  let p2 = Nn_syntax.of_tokens ~entities lib toks in
  Alcotest.(check string) "roundtrip through slot"
    (Canonical.canonical_string lib p)
    (Canonical.canonical_string lib p2)

let test_measure_slots () =
  let entities = [ ("NUMBER_0", Value.Number 60.0) ] in
  let p = parse "now => @com.nest.thermostat.set_target_temperature(value = 60F);" in
  let toks = Nn_syntax.to_tokens ~entities lib p in
  Alcotest.(check bool) "number slot + unit token" true
    (List.mem "NUMBER_0" toks && List.mem "unit:F" toks);
  let p2 = Nn_syntax.of_tokens ~entities lib toks in
  Alcotest.(check string) "roundtrip"
    (Canonical.canonical_string lib p)
    (Canonical.canonical_string lib p2)

let test_type_annotations_option () =
  let p = parse "now => @com.twitter.post(status = \"x\");" in
  let with_types = Nn_syntax.to_tokens lib p in
  let without =
    Nn_syntax.to_tokens
      ~options:{ Nn_syntax.type_annotations = false; keyword_params = true }
      lib p
  in
  Alcotest.(check bool) "typed param token" true (List.mem "param:status:String" with_types);
  Alcotest.(check bool) "untyped param token" true (List.mem "param:status" without)

let test_positional_option () =
  let options = { Nn_syntax.type_annotations = true; keyword_params = false } in
  let p = parse "now => @com.gmail.send_email(to = \"a@b.com\", subject = \"s\", message = \"m\");" in
  let toks = Nn_syntax.to_tokens ~options lib p in
  Alcotest.(check bool) "no keyword tokens" true
    (not (List.exists (fun t -> Genie_util.Tok.starts_with ~prefix:"param:to" t) toks));
  let p2 = Nn_syntax.of_tokens ~options lib toks in
  Alcotest.(check string) "positional roundtrip"
    (Canonical.canonical_string lib p)
    (Canonical.canonical_string lib p2)

let test_well_formed () =
  let good = Nn_syntax.to_tokens lib (parse "now => @com.gmail.inbox() => notify;") in
  Alcotest.(check bool) "valid tokens" true (Nn_syntax.well_formed lib good);
  Alcotest.(check bool) "garbage rejected" false
    (Nn_syntax.well_formed lib [ "now"; "=>"; "=>"; "notify" ]);
  Alcotest.(check bool) "ill-typed rejected" false
    (Nn_syntax.well_formed lib
       [ "now"; "=>"; "@com.twitter.post"; "=>"; "notify" ])

(* property: roundtrip over the synthesized pool *)
let program_pool =
  lazy
    (let prims = Genie_thingpedia.Thingpedia.core_templates () in
     let rules = Genie_templates.Rules_thingtalk.rules lib in
     let g =
       Genie_templates.Grammar.create lib ~prims ~rules
         ~rng:(Genie_util.Rng.create 99) ()
     in
     List.map snd
       (Genie_synthesis.Engine.synthesize g
          { Genie_synthesis.Engine.default_config with
            seed = 99;
            target_per_rule = 60;
            max_depth = 4 }))

let qcheck_roundtrip =
  QCheck.Test.make ~name:"nn-syntax roundtrip on synthesized programs" ~count:200
    (QCheck.make
       (QCheck.Gen.oneofl (Lazy.force program_pool))
       ~print:Printer.program_to_string)
    (fun p ->
      let c = Canonical.normalize lib p in
      Canonical.canonical_string lib (roundtrip c) = Canonical.canonical_string lib c)

let qcheck_positional_roundtrip =
  let options = { Nn_syntax.type_annotations = false; keyword_params = false } in
  QCheck.Test.make ~name:"positional nn-syntax roundtrip" ~count:100
    (QCheck.make
       (QCheck.Gen.oneofl (Lazy.force program_pool))
       ~print:Printer.program_to_string)
    (fun p ->
      let c = Canonical.normalize lib p in
      Canonical.canonical_string lib (roundtrip ~options c)
      = Canonical.canonical_string lib c)

let suite =
  [ Alcotest.test_case "roundtrips" `Quick test_roundtrips;
    Alcotest.test_case "quoted spans" `Quick test_quoted_span;
    Alcotest.test_case "named constants" `Quick test_named_constants;
    Alcotest.test_case "measure slots" `Quick test_measure_slots;
    Alcotest.test_case "type annotation option" `Quick test_type_annotations_option;
    Alcotest.test_case "positional option" `Quick test_positional_option;
    Alcotest.test_case "well-formedness check" `Quick test_well_formed;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_positional_roundtrip ]
