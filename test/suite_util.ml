(* Tests for genie.util: PRNG, tokenizer, counters. *)

open Genie_util

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10)
  done

let test_rng_float_bounds () =
  let rng = Rng.create 9 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 1.0 in
    Alcotest.(check bool) "in range" true (x >= 0.0 && x < 1.0)
  done

let test_rng_split_independent () =
  let a = Rng.create 3 in
  let b = Rng.split a in
  (* the split stream differs from the parent's continued stream *)
  let xs = List.init 20 (fun _ -> Rng.int a 1000000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_pick_distribution () =
  let rng = Rng.create 11 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 3000 do
    let v = Rng.pick rng [ "a"; "b"; "c" ] in
    Hashtbl.replace counts v (1 + try Hashtbl.find counts v with Not_found -> 0)
  done;
  Hashtbl.iter
    (fun _ c -> Alcotest.(check bool) "roughly uniform" true (c > 700 && c < 1300))
    counts

let test_rng_shuffle_permutation () =
  let rng = Rng.create 13 in
  let xs = List.init 50 Fun.id in
  let ys = Rng.shuffle rng xs in
  Alcotest.(check (list int)) "same elements" xs (List.sort compare ys)

let test_rng_sample () =
  let rng = Rng.create 17 in
  let xs = List.init 100 Fun.id in
  let s = Rng.sample rng 10 xs in
  Alcotest.(check int) "size" 10 (List.length s);
  Alcotest.(check int) "no duplicates" 10 (List.length (List.sort_uniq compare s))

let test_rng_weighted () =
  let rng = Rng.create 19 in
  let heavy = ref 0 in
  for _ = 1 to 1000 do
    if Rng.weighted rng [ ("heavy", 9.0); ("light", 1.0) ] = "heavy" then incr heavy
  done;
  Alcotest.(check bool) "weights respected" true (!heavy > 800)

let test_budget_decay () =
  Alcotest.(check int) "depth 0" 100 (Rng.budget_for_depth ~target:100 ~depth:0);
  Alcotest.(check int) "depth 1" 50 (Rng.budget_for_depth ~target:100 ~depth:1);
  Alcotest.(check int) "depth 3" 12 (Rng.budget_for_depth ~target:100 ~depth:3);
  Alcotest.(check int) "never zero" 1 (Rng.budget_for_depth ~target:100 ~depth:12)

let test_tokenize_basic () =
  Alcotest.(check (list string)) "simple" [ "hello"; "world" ] (Tok.tokenize "Hello  World");
  Alcotest.(check (list string))
    "punctuation" [ "a"; ","; "b"; "." ] (Tok.tokenize "a, b.");
  Alcotest.(check (list string))
    "quotes" [ "\""; "funny"; "cat"; "\"" ] (Tok.tokenize "\"funny cat\"")

let test_tokenize_preserves_urls () =
  Alcotest.(check (list string))
    "url kept whole"
    [ "the"; "feed"; "at"; "https://example.com/feed" ]
    (Tok.tokenize "the feed at https://example.com/feed");
  Alcotest.(check (list string))
    "email kept whole" [ "alice.smith@gmail.com" ] (Tok.tokenize "alice.smith@gmail.com");
  Alcotest.(check (list string))
    "path kept whole" [ "/photos/vacation.jpg" ] (Tok.tokenize "/photos/vacation.jpg")

let test_tokenize_handles () =
  Alcotest.(check (list string)) "hashtag" [ "#cats" ] (Tok.tokenize "#cats");
  Alcotest.(check (list string)) "username" [ "@alice" ] (Tok.tokenize "@alice")

let test_ngrams () =
  Alcotest.(check int) "bigram count" 2 (List.length (Tok.bigrams [ "a"; "b"; "c" ]));
  let all = Tok.all_ngrams 2 [ "a"; "b"; "c" ] in
  Alcotest.(check (list string)) "unigrams and bigrams" [ "a"; "b"; "c"; "a b"; "b c" ] all

let test_match_sub () =
  Alcotest.(check bool) "found" true
    (Tok.match_sub [ "x"; "a"; "b"; "y" ] [ "a"; "b" ] = Some ([ "x" ], [ "y" ]));
  Alcotest.(check bool) "missing" true (Tok.match_sub [ "x" ] [ "a" ] = None);
  Alcotest.(check bool) "empty needle" true (Tok.match_sub [ "x" ] [] = None)

let test_string_helpers () =
  Alcotest.(check bool) "starts" true (Tok.starts_with ~prefix:"ab" "abc");
  Alcotest.(check bool) "not starts" false (Tok.starts_with ~prefix:"b" "abc");
  Alcotest.(check bool) "ends" true (Tok.ends_with ~suffix:"bc" "abc");
  Alcotest.(check bool) "contains" true (Tok.contains_substring ~sub:"b c" "a b c d");
  Alcotest.(check (list string))
    "split_on_string" [ "a"; "b"; "c" ] (Tok.split_on_string ~sep:"::" "a::b::c")

let test_counter () =
  let c = Counter.create () in
  Counter.add c "x";
  Counter.add c "x";
  Counter.add ~weight:0.5 c "y";
  Alcotest.(check (float 1e-9)) "count" 2.0 (Counter.count c "x");
  Alcotest.(check (float 1e-9)) "weighted" 0.5 (Counter.count c "y");
  Alcotest.(check (float 1e-9)) "total" 2.5 (Counter.total c);
  Alcotest.(check int) "distinct" 2 (Counter.distinct c);
  Alcotest.(check (float 1e-9)) "missing" 0.0 (Counter.count c "z");
  match Counter.top 1 c with
  | [ (k, v) ] ->
      Alcotest.(check string) "top key" "x" k;
      Alcotest.(check (float 1e-9)) "top count" 2.0 v
  | _ -> Alcotest.fail "expected one top entry"

let test_atomic_counter () =
  let c = Atomic_counter.create () in
  Atomic_counter.incr c;
  Atomic_counter.incr c;
  Atomic_counter.add c 5;
  Atomic_counter.add c (-3);
  Alcotest.(check int) "sequential arithmetic" 4 (Atomic_counter.get c);
  Atomic_counter.reset c;
  Alcotest.(check int) "reset" 0 (Atomic_counter.get c);
  let c = Atomic_counter.create ~value:10 () in
  Alcotest.(check int) "initial value" 10 (Atomic_counter.get c)

let test_atomic_counter_parallel () =
  (* concurrent increments from two domains lose no updates *)
  let c = Atomic_counter.create () in
  let bump () =
    for _ = 1 to 10_000 do
      Atomic_counter.incr c
    done;
    for _ = 1 to 1_000 do
      Atomic_counter.add c 2
    done
  in
  let d = Domain.spawn bump in
  bump ();
  Domain.join d;
  Alcotest.(check int) "no lost updates" 24_000 (Atomic_counter.get c)

let test_json_lite () =
  let j =
    Json_lite.Obj
      [ ("name", Json_lite.String "a \"quoted\"\nvalue");
        ("n", Json_lite.Int 3);
        ("rate", Json_lite.Float 0.5);
        ("bad", Json_lite.Float Float.nan);
        ("ok", Json_lite.Bool true);
        ("items", Json_lite.List [ Json_lite.Int 1; Json_lite.Int 2 ]);
        ("empty", Json_lite.List []) ]
  in
  let s = Json_lite.to_string ~indent:0 j in
  Alcotest.(check bool) "escapes quotes" true
    (Genie_util.Tok.contains_substring ~sub:"a \\\"quoted\\\"\\nvalue" s);
  Alcotest.(check bool) "nan becomes null" true
    (Genie_util.Tok.contains_substring ~sub:"\"bad\": null" s);
  Alcotest.(check bool) "int" true (Genie_util.Tok.contains_substring ~sub:"\"n\": 3" s);
  Alcotest.(check bool) "empty list" true
    (Genie_util.Tok.contains_substring ~sub:"\"empty\": []" s)

let test_json_float_roundtrip () =
  (* float_repr must be lossless: a fixed %.6g corrupts anything with more
     than six significant digits, like nanosecond-scale latency sums *)
  let cases =
    [ 0.0; -0.0; 1.0; 0.5; 0.1; 1.0 /. 3.0; Float.pi; 1e-7; -2.5e-9;
      123456789012345.67; 86_399_123_456_789.25; 6.02214076e23;
      Float.min_float; Float.max_float; Float.epsilon ]
  in
  List.iter
    (fun f ->
      let s = Json_lite.float_repr f in
      Alcotest.(check bool)
        (Printf.sprintf "%h round-trips via %S" f s)
        true
        (float_of_string s = f))
    cases;
  (* the representation is also the shortest: the common cases stay short *)
  Alcotest.(check string) "0.5 stays short" "0.5" (Json_lite.float_repr 0.5);
  Alcotest.(check string) "1 stays short" "1" (Json_lite.float_repr 1.0);
  Alcotest.(check string) "nan is null" "null" (Json_lite.float_repr Float.nan);
  Alcotest.(check string) "inf is null" "null" (Json_lite.float_repr Float.infinity);
  Alcotest.(check string) "-inf is null" "null"
    (Json_lite.float_repr Float.neg_infinity)

let test_json_escape_table () =
  (* parse-free: every expected escape is a literal, compared byte for byte *)
  let cases =
    [ ("plain", "plain");
      ("", "");
      ("q\"q", "q\\\"q");
      ("b\\b", "b\\\\b");
      ("n\nn", "n\\nn");
      ("r\rr", "r\\rr");
      ("t\tt", "t\\tt");
      ("\x00", "\\u0000");
      ("\x01\x02", "\\u0001\\u0002");
      ("\x1f", "\\u001f");
      ("bell\x07", "bell\\u0007");
      ("\x7f", "\x7f");  (* DEL is not a JSON control escape *)
      ("caf\xc3\xa9", "caf\xc3\xa9");  (* UTF-8 passes through *)
      ("mix\"\\\n\x01end", "mix\\\"\\\\\\n\\u0001end") ]
  in
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string)
        (Printf.sprintf "escape %S" input)
        expected (Json_lite.escape input))
    cases

let qcheck_shuffle_preserves =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:50
    QCheck.(pair small_int (small_list small_int))
    (fun (seed, xs) ->
      let rng = Rng.create seed in
      List.sort compare (Rng.shuffle rng xs) = List.sort compare xs)

let suite =
  [ Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng int bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng float bounds" `Quick test_rng_float_bounds;
    Alcotest.test_case "rng split independent" `Quick test_rng_split_independent;
    Alcotest.test_case "rng pick distribution" `Quick test_rng_pick_distribution;
    Alcotest.test_case "rng shuffle permutation" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "rng sample" `Quick test_rng_sample;
    Alcotest.test_case "rng weighted" `Quick test_rng_weighted;
    Alcotest.test_case "synthesis budget decay" `Quick test_budget_decay;
    Alcotest.test_case "tokenize basic" `Quick test_tokenize_basic;
    Alcotest.test_case "tokenize urls/emails/paths" `Quick test_tokenize_preserves_urls;
    Alcotest.test_case "tokenize handles" `Quick test_tokenize_handles;
    Alcotest.test_case "ngrams" `Quick test_ngrams;
    Alcotest.test_case "match_sub" `Quick test_match_sub;
    Alcotest.test_case "string helpers" `Quick test_string_helpers;
    Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "atomic counter" `Quick test_atomic_counter;
    Alcotest.test_case "atomic counter parallel" `Quick test_atomic_counter_parallel;
    Alcotest.test_case "json lite" `Quick test_json_lite;
    Alcotest.test_case "json float round-trip" `Quick test_json_float_roundtrip;
    Alcotest.test_case "json escape table" `Quick test_json_escape_table;
    QCheck_alcotest.to_alcotest qcheck_shuffle_preserves ]
