(* Tests for the serving layer: LRU parse cache, bounded channel, Domain
   worker pool, metrics histogram, Zipfian traffic, the server facade — and
   the robustness layer: seeded fault schedules (worker crashes, injected
   latency, dropped messages), per-request deadlines, bounded-queue
   admission control, retry with backoff, and cache-only degradation.

   Every fault decision is a pure function of (schedule seed, request id,
   attempt), so these tests assert exact outcomes — statuses, attempt
   counts, shed sets — not probabilistic ones, and repeat runs must be
   byte-identical whether the server is sequential or pooled.

   Servers default to the sequential path (workers = 0); only the tests that
   specifically exercise the pool spawn domains, and they use small worker
   counts so the suite stays robust on single-core machines. *)

open Genie_thingtalk
open Genie_serve

let lib = Genie_thingpedia.Thingpedia.core_library ()
let parse = Parser.parse_program

(* A tiny but non-degenerate training set (mirrors suite_parser_model). *)
let mini_dataset () =
  let mk sentence src =
    Genie_dataset.Example.make ~id:0 ~tokens:(Genie_util.Tok.tokenize sentence)
      ~program:(parse src) ~source:Genie_dataset.Example.Synthesized ()
  in
  List.concat
    (List.init 6 (fun i ->
         let name = List.nth [ "alice"; "bob"; "carol"; "dan"; "eve"; "mallory" ] i in
         [ mk
             (Printf.sprintf "tweet %s" name)
             (Printf.sprintf "now => @com.twitter.post(status = \"%s\");" name);
           mk
             (Printf.sprintf "show me emails from %s" name)
             (Printf.sprintf
                "now => (@com.gmail.inbox()) filter sender_name == \"%s\" => notify;" name);
           mk "get a cat picture" "now => @com.thecatapi.get() => notify;";
           mk "when i receive an email , get a cat picture"
             "monitor (@com.gmail.inbox()) => @com.thecatapi.get() => notify;" ]))

let model =
  lazy
    (Genie_parser_model.Model.of_aligner
       (Genie_parser_model.Aligner.train lib (mini_dataset ())))

let utterances =
  [ "tweet alice"; "tweet bob"; "show me emails from carol"; "get a cat picture";
    "when i receive an email , get a cat picture"; "tweet dan";
    "show me emails from eve"; "tweet mallory" ]

(* the counter-partition invariant that must hold in every snapshot *)
let check_invariant ?(msg = "requests = ok + no_parse + errors + timeouts + shed")
    server =
  let m = Server.metrics_snapshot server in
  Alcotest.(check int)
    msg m.Metrics.requests
    (m.Metrics.ok + m.Metrics.no_parse + m.Metrics.errors + m.Metrics.timeouts
   + m.Metrics.shed)

(* everything deterministic about a response, cache flags included *)
let digest (r : Response.t) =
  Printf.sprintf "#%d %s %s cache=%b degraded=%b attempts=%d" r.Response.id
    (Response.status_to_string r.Response.status)
    (Option.value ~default:"-" r.Response.program_text)
    r.Response.from_cache r.Response.degraded r.Response.attempts

(* the subset that must also agree between sequential and pooled runs (cache
   flags may differ: a pooled retry can re-enter behind a same-key request) *)
let cross_path_digest (r : Response.t) =
  Printf.sprintf "#%d %s %s attempts=%d" r.Response.id
    (Response.status_to_string r.Response.status)
    (Option.value ~default:"-" r.Response.program_text)
    r.Response.attempts

(* --- parse cache -------------------------------------------------------------- *)

let test_lru_eviction_order () =
  let c = Parse_cache.create ~capacity:2 in
  Parse_cache.add c "a" 1;
  Parse_cache.add c "b" 2;
  Alcotest.(check (list string)) "mru order" [ "b"; "a" ] (Parse_cache.keys_mru c);
  (* touching [a] protects it; adding [c] evicts [b] *)
  Alcotest.(check (option int)) "hit a" (Some 1) (Parse_cache.find c "a");
  Parse_cache.add c "c" 3;
  Alcotest.(check (list string)) "b evicted" [ "c"; "a" ] (Parse_cache.keys_mru c);
  Alcotest.(check bool) "b gone" false (Parse_cache.mem c "b");
  let s = Parse_cache.stats c in
  Alcotest.(check int) "one eviction" 1 s.Parse_cache.evictions;
  Alcotest.(check int) "one hit" 1 s.Parse_cache.hits

let test_lru_capacity_one () =
  let c = Parse_cache.create ~capacity:1 in
  Parse_cache.add c "a" 1;
  Alcotest.(check (option int)) "a cached" (Some 1) (Parse_cache.find c "a");
  Parse_cache.add c "b" 2;
  Alcotest.(check bool) "a evicted" false (Parse_cache.mem c "a");
  Alcotest.(check (option int)) "b cached" (Some 2) (Parse_cache.find c "b");
  Alcotest.(check int) "length" 1 (Parse_cache.length c);
  (* re-adding the resident key must not evict it *)
  Parse_cache.add c "b" 20;
  Alcotest.(check (option int)) "replaced in place" (Some 20) (Parse_cache.find c "b");
  Alcotest.(check int) "single eviction" 1 (Parse_cache.stats c).Parse_cache.evictions

let test_lru_capacity_zero () =
  let c = Parse_cache.create ~capacity:0 in
  Parse_cache.add c "a" 1;
  Alcotest.(check (option int)) "nothing stored" None (Parse_cache.find c "a");
  Alcotest.(check (option int)) "still nothing" None (Parse_cache.find c "a");
  Alcotest.(check int) "empty" 0 (Parse_cache.length c);
  Alcotest.(check int) "two misses" 2 (Parse_cache.stats c).Parse_cache.misses

(* --- cached parse is byte-identical to a cold parse ----------------------------- *)

let test_cached_response_identical () =
  let model = Lazy.force model in
  let server = Server.create ~lib ~model () in
  let cold_server = Server.create ~lib ~model () in
  List.iter
    (fun utterance ->
      let r1 = Server.handle server (Request.make ~id:0 utterance) in
      let r2 = Server.handle server (Request.make ~id:1 utterance) in
      let cold = Server.handle cold_server (Request.make ~id:2 utterance) in
      Alcotest.(check bool) "first is a miss" false r1.Response.from_cache;
      Alcotest.(check bool) "second is a hit" true r2.Response.from_cache;
      (* the cached response equals both the original and an independent
         cold parse, byte for byte *)
      Alcotest.(check (option string)) "hit = miss program"
        r1.Response.program_text r2.Response.program_text;
      Alcotest.(check (list string)) "hit = miss nn tokens"
        r1.Response.nn_tokens r2.Response.nn_tokens;
      Alcotest.(check (float 0.0)) "hit = miss score" r1.Response.score
        r2.Response.score;
      Alcotest.(check (option string)) "hit = cold program"
        cold.Response.program_text r2.Response.program_text;
      Alcotest.(check (list string)) "hit = cold nn tokens"
        cold.Response.nn_tokens r2.Response.nn_tokens)
    utterances;
  let s = Server.stats server in
  Alcotest.(check int) "hits" (List.length utterances) s.Server.cache_hits;
  Alcotest.(check int) "misses" (List.length utterances) s.Server.cache_misses;
  check_invariant server

(* --- chan ----------------------------------------------------------------------- *)

let test_chan_fifo_and_close () =
  let c = Chan.create ~capacity:4 in
  Chan.push c 1;
  Chan.push c 2;
  Chan.push c 3;
  Alcotest.(check int) "length" 3 (Chan.length c);
  Chan.close c;
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Chan.pop c);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Chan.pop c);
  Alcotest.(check (option int)) "fifo 3" (Some 3) (Chan.pop c);
  Alcotest.(check (option int)) "drained" None (Chan.pop c);
  Alcotest.check_raises "push after close" Chan.Closed (fun () -> Chan.push c 4)

let test_chan_try_push () =
  let c = Chan.create ~capacity:2 in
  Alcotest.(check bool) "fits 1" true (Chan.try_push c 1);
  Alcotest.(check bool) "fits 2" true (Chan.try_push c 2);
  Alcotest.(check bool) "full" false (Chan.try_push c 3);
  Alcotest.(check (option int)) "fifo" (Some 1) (Chan.pop c);
  Alcotest.(check bool) "fits again" true (Chan.try_push c 4);
  Chan.close c;
  Alcotest.check_raises "try_push after close" Chan.Closed (fun () ->
      ignore (Chan.try_push c 5))

let test_chan_try_push_capacity_boundary () =
  (* exactly at capacity: the nth push fits, the (n+1)th is refused, and one
     pop reopens exactly one slot *)
  let cap = 3 in
  let c = Chan.create ~capacity:cap in
  for i = 1 to cap do
    Alcotest.(check bool) (Printf.sprintf "push %d fits" i) true (Chan.try_push c i)
  done;
  Alcotest.(check int) "full at capacity" cap (Chan.length c);
  Alcotest.(check bool) "push cap+1 refused" false (Chan.try_push c (cap + 1));
  Alcotest.(check bool) "still refused" false (Chan.try_push c (cap + 1));
  Alcotest.(check int) "refusals do not grow the queue" cap (Chan.length c);
  Alcotest.(check (option int)) "fifo head" (Some 1) (Chan.pop c);
  Alcotest.(check bool) "one slot reopened" true (Chan.try_push c 10);
  Alcotest.(check bool) "and only one" false (Chan.try_push c 11);
  (* declared capacity 0 clamps to 1: one element fits, the second does not *)
  let z = Chan.create ~capacity:0 in
  Alcotest.(check bool) "clamped capacity holds one" true (Chan.try_push z 1);
  Alcotest.(check bool) "second refused" false (Chan.try_push z 2);
  Alcotest.(check (option int)) "clamped element preserved" (Some 1) (Chan.pop z)

(* --- pool ------------------------------------------------------------------------ *)

let test_pool_roundtrip () =
  let pool =
    Pool.create ~workers:2 ~queue_capacity:4 ~handler:(fun w x -> (w, x * x)) ()
  in
  let items = List.init 20 (fun i -> i) in
  List.iter (fun i -> Pool.submit pool ~worker:i i) items;
  let results = Pool.drain pool 20 in
  Pool.shutdown pool;
  Alcotest.(check int) "all results" 20 (List.length results);
  let squares = List.sort compare (List.map snd results) in
  Alcotest.(check (list int)) "squares" (List.map (fun i -> i * i) items) squares;
  (* sharding respected: worker w only processed items with i mod 2 = w *)
  List.iter
    (fun (w, sq) ->
      let i = int_of_float (sqrt (float_of_int sq) +. 0.5) in
      Alcotest.(check int) "sharded to the right worker" (i mod 2) w)
    results

let test_pool_handler_exception_surfaces () =
  let pool =
    Pool.create ~workers:2 ~queue_capacity:2
      ~handler:(fun _ x -> if x = 3 then failwith "boom" else x)
      ()
  in
  List.iter (fun i -> Pool.submit pool ~worker:i i) [ 0; 1; 2; 3 ];
  (match Pool.drain pool 4 with
  | _ -> Alcotest.fail "expected the handler exception to re-raise"
  | exception Failure msg -> Alcotest.(check string) "message" "boom" msg);
  Pool.shutdown pool

let test_pool_drain_results_pairs_failures () =
  let pool =
    Pool.create ~workers:2 ~queue_capacity:4
      ~handler:(fun _ x -> if x mod 2 = 1 then failwith "odd" else x * 10)
      ()
  in
  List.iter (fun i -> Pool.submit pool ~worker:i i) [ 0; 1; 2; 3 ];
  let results = Pool.drain_results pool 4 in
  Pool.shutdown pool;
  let ok, failed =
    List.partition (function Stdlib.Ok _ -> true | _ -> false) results
  in
  Alcotest.(check int) "two ok" 2 (List.length ok);
  Alcotest.(check int) "two failed" 2 (List.length failed);
  (* each failure carries the request that caused it, so nothing is lost *)
  let failed_reqs =
    List.sort compare
      (List.filter_map
         (function Stdlib.Error (req, _) -> Some req | _ -> None)
         results)
  in
  Alcotest.(check (list int)) "failed requests identified" [ 1; 3 ] failed_reqs

let test_pool_fault_hook_drops () =
  let pool =
    Pool.create ~workers:2 ~queue_capacity:4
      ~fault_hook:(fun _ x -> if x = 2 then Some Fault.Injected_drop else None)
      ~handler:(fun _ x -> x)
      ()
  in
  List.iter (fun i -> Pool.submit pool ~worker:i i) [ 0; 1; 2; 3 ];
  let results = Pool.drain_results pool 4 in
  Pool.shutdown pool;
  let dropped =
    List.filter_map
      (function
        | Stdlib.Error (req, Fault.Injected_drop) -> Some req | _ -> None)
      results
  in
  (* the dropped message is reported, not silently lost *)
  Alcotest.(check (list int)) "drop reported with its request" [ 2 ] dropped

(* --- worker-pool determinism: pooled = sequential --------------------------------- *)

let test_pool_matches_sequential () =
  let model = Lazy.force model in
  let requests =
    Traffic.generate ~rng:(Genie_util.Rng.create 11) ~utterances:utterances 60
  in
  let seq = Server.create ~lib ~model () in
  let seq_responses = Server.run_batch seq requests in
  let pooled = Server.create ~lib ~model ~workers:3 ~queue_capacity:8 () in
  let pooled_responses = Server.run_batch pooled requests in
  Server.shutdown pooled;
  Alcotest.(check int) "same count" (List.length seq_responses)
    (List.length pooled_responses);
  (* identical multiset of (id, parse) -- run_batch sorts by id, so direct
     pairwise comparison checks the multiset *)
  List.iter2
    (fun (a : Response.t) (b : Response.t) ->
      Alcotest.(check int) "same id" a.Response.id b.Response.id;
      Alcotest.(check string) "same utterance" a.Response.utterance b.Response.utterance;
      Alcotest.(check (option string)) "same program" a.Response.program_text
        b.Response.program_text;
      Alcotest.(check (list string)) "same nn tokens" a.Response.nn_tokens
        b.Response.nn_tokens)
    seq_responses pooled_responses;
  (* key-sharding means the pooled run decodes each distinct key exactly
     once, like the sequential run *)
  let misses s = (Server.stats s).Server.cache_misses in
  Alcotest.(check int) "same decode count" (misses seq) (misses pooled)

let test_cache_eviction_under_alternating_keys () =
  let model = Lazy.force model in
  (* capacity-1 caches and two alternating keys: on one engine every decode
     evicts the other key, so the cache thrashes deterministically *)
  let reqs =
    List.init 24 (fun i ->
        Request.make ~id:i (if i mod 2 = 0 then "tweet alice" else "tweet bob"))
  in
  let run ~workers () =
    let server =
      Server.create ~lib ~model ~cache_capacity:1 ~workers ~queue_capacity:32 ()
    in
    let rs = Server.run_batch server reqs in
    let s = Server.stats server in
    check_invariant server;
    Server.shutdown server;
    (List.map cross_path_digest rs, s)
  in
  let seq1, s_seq = run ~workers:0 () in
  let seq2, _ = run ~workers:0 () in
  Alcotest.(check (list string)) "sequential deterministic" seq1 seq2;
  Alcotest.(check int) "alternation defeats a capacity-1 cache" 24
    s_seq.Server.cache_misses;
  Alcotest.(check int) "every add after the first evicts" 23
    s_seq.Server.cache_evictions;
  Alcotest.(check int) "resident entry bounded by capacity" 1
    s_seq.Server.cache_entries;
  (* the pooled path may shard the two keys apart (fewer misses, no thrash)
     but must stay deterministic and answer identically *)
  let pooled1, s_pooled = run ~workers:2 () in
  let pooled2, _ = run ~workers:2 () in
  Alcotest.(check (list string)) "pooled deterministic" pooled1 pooled2;
  Alcotest.(check (list string)) "pooled answers = sequential" seq1 pooled1;
  Alcotest.(check int) "pooled accounts for every lookup" 24
    (s_pooled.Server.cache_hits + s_pooled.Server.cache_misses)

let test_concurrent_same_key_coalesces () =
  let model = Lazy.force model in
  (* sixteen concurrent submits of one key through real domain workers: the
     key shards to a single worker, whose FIFO guarantees exactly one decode
     warms the cache and every later submit hits it — even at capacity 1 *)
  let server =
    Server.create ~lib ~model ~cache_capacity:1 ~workers:2 ~queue_capacity:32 ()
  in
  let rs =
    Server.run_batch server
      (List.init 16 (fun i -> Request.make ~id:i "tweet alice"))
  in
  let s = Server.stats server in
  check_invariant server;
  Server.shutdown server;
  Alcotest.(check int) "one decode" 1 s.Server.cache_misses;
  Alcotest.(check int) "fifteen hits" 15 s.Server.cache_hits;
  Alcotest.(check int) "no evictions on a single hot key" 0
    s.Server.cache_evictions;
  let programs =
    List.sort_uniq compare
      (List.map (fun (r : Response.t) -> r.Response.program_text) rs)
  in
  Alcotest.(check int) "one distinct program" 1 (List.length programs);
  List.iter
    (fun (r : Response.t) ->
      Alcotest.(check string) "status ok" "ok"
        (Response.status_to_string r.Response.status))
    rs

(* --- fault schedules --------------------------------------------------------------- *)

let test_fault_spec_roundtrip () =
  let spec_str = "seed=7,crash=0.25,crash_attempts=2,latency=0.5,latency_ms=2,drop=0.1" in
  (match Fault.of_string spec_str with
  | Error e -> Alcotest.failf "spec rejected: %s" e
  | Ok f ->
      let s = Fault.spec f in
      Alcotest.(check int) "seed" 7 s.Fault.seed;
      Alcotest.(check (float 0.0)) "crash" 0.25 s.Fault.crash_rate;
      Alcotest.(check int) "crash_attempts" 2 s.Fault.crash_attempts;
      Alcotest.(check (float 0.0)) "latency_ns" 2e6 s.Fault.latency_ns;
      Alcotest.(check (float 0.0)) "drop" 0.1 s.Fault.drop_rate;
      (* to_string round-trips *)
      (match Fault.of_string (Fault.to_string f) with
      | Ok f' -> Alcotest.(check bool) "round trip" true (Fault.spec f' = s)
      | Error e -> Alcotest.failf "round trip rejected: %s" e));
  (match Fault.of_string "bogus=1" with
  | Ok _ -> Alcotest.fail "unknown key accepted"
  | Error _ -> ());
  (match Fault.of_string "crash=2.0" with
  | Ok _ -> Alcotest.fail "out-of-range rate accepted"
  | Error _ -> ());
  Alcotest.(check bool) "none inactive" false (Fault.active Fault.none)

let test_fault_decisions_deterministic () =
  let f =
    Fault.create
      { Fault.default with Fault.seed = 13; crash_rate = 0.3; drop_rate = 0.2 }
  in
  (* pure in (id, attempt): repeated queries agree *)
  for id = 0 to 199 do
    Alcotest.(check bool) "crash stable"
      (Fault.crashes f ~id ~attempt:0)
      (Fault.crashes f ~id ~attempt:0);
    Alcotest.(check bool) "drop stable" (Fault.drops f ~id ~attempt:0)
      (Fault.drops f ~id ~attempt:0)
  done;
  (* the hit fraction is in the right ballpark for the rate *)
  let hits =
    List.length
      (List.filter
         (fun id -> Fault.crashes f ~id ~attempt:0)
         (List.init 1000 Fun.id))
  in
  Alcotest.(check bool) "crash rate ~0.3" true (hits > 200 && hits < 400);
  (* a different seed selects a different subset *)
  let g = Fault.create { (Fault.spec f) with Fault.seed = 14 } in
  let differs =
    List.exists
      (fun id -> Fault.crashes f ~id ~attempt:0 <> Fault.crashes g ~id ~attempt:0)
      (List.init 200 Fun.id)
  in
  Alcotest.(check bool) "seed matters" true differs

let test_backoff_deterministic_and_bounded () =
  let f = Fault.none in
  let base = 1e6 in
  for attempt = 0 to 4 do
    let b = Fault.backoff_ns f ~base_ns:base ~id:5 ~attempt in
    Alcotest.(check (float 0.0)) "deterministic" b
      (Fault.backoff_ns f ~base_ns:base ~id:5 ~attempt);
    let scale = base *. Float.pow 2.0 (float_of_int attempt) in
    Alcotest.(check bool) "within [0.5, 1.0) of the exponential envelope" true
      (b >= 0.5 *. scale && b < scale)
  done

(* --- crash injection + retry --------------------------------------------------------- *)

let crash_all ~attempts =
  Fault.create
    { Fault.default with
      Fault.seed = 5;
      crash_rate = 1.0;
      crash_attempts = attempts }

let test_crash_retried_and_answered () =
  let model = Lazy.force model in
  (* every first decode attempt crashes; one retry answers *)
  let server =
    Server.create ~lib ~model ~fault:(crash_all ~attempts:1) ~max_retries:2
      ~retry_backoff_ms:0.01 ()
  in
  let clean = Server.create ~lib ~model () in
  let reqs = List.mapi (fun i u -> Request.make ~id:i u) utterances in
  let rs = Server.run_batch server reqs in
  let clean_rs = Server.run_batch clean reqs in
  Alcotest.(check int) "all answered" (List.length reqs) (List.length rs);
  List.iter2
    (fun (r : Response.t) (c : Response.t) ->
      Alcotest.(check string) "status ok" "ok"
        (Response.status_to_string r.Response.status);
      Alcotest.(check int) "one retry" 2 r.Response.attempts;
      (* the retried answer is the same parse the clean server produces *)
      Alcotest.(check (option string)) "same program as clean"
        c.Response.program_text r.Response.program_text)
    rs clean_rs;
  let s = Server.stats server in
  Alcotest.(check int) "retry per request" (List.length reqs) s.Server.retries;
  Alcotest.(check int) "all ok" (List.length reqs) s.Server.ok;
  Alcotest.(check int) "no errors" 0 s.Server.errors;
  check_invariant server;
  (* crashes are scheduled before the cache lookup, so even a repeat of an
     answered utterance crashes once; its retry answers from the cache *)
  let repeat = Server.handle server (Request.make ~id:100 "tweet alice") in
  Alcotest.(check bool) "retry answers from cache" true repeat.Response.from_cache;
  Alcotest.(check int) "one crash, one retry" 2 repeat.Response.attempts

let test_crash_exhausts_retries () =
  let model = Lazy.force model in
  let server =
    Server.create ~lib ~model ~fault:(crash_all ~attempts:10) ~max_retries:1
      ~retry_backoff_ms:0.01 ()
  in
  let reqs = List.mapi (fun i u -> Request.make ~id:i u) utterances in
  let rs = Server.run_batch server reqs in
  List.iter
    (fun (r : Response.t) ->
      Alcotest.(check string) "status error" "error"
        (Response.status_to_string r.Response.status);
      Alcotest.(check int) "gave up after max_retries + 1" 2 r.Response.attempts;
      Alcotest.(check bool) "error detail present" true
        (Option.is_some r.Response.error))
    rs;
  let s = Server.stats server in
  Alcotest.(check int) "all errors" (List.length reqs) s.Server.errors;
  Alcotest.(check int) "ok none" 0 s.Server.ok;
  check_invariant server

(* --- dropped messages ------------------------------------------------------------------ *)

let test_drop_retried_and_answered () =
  let model = Lazy.force model in
  let fault =
    Fault.create
      { Fault.default with Fault.seed = 9; drop_rate = 1.0; drop_attempts = 1 }
  in
  let check server =
    let reqs = List.mapi (fun i u -> Request.make ~id:i u) utterances in
    let rs = Server.run_batch server reqs in
    Alcotest.(check int) "all answered" (List.length reqs) (List.length rs);
    List.iter
      (fun (r : Response.t) ->
        Alcotest.(check string) "status ok" "ok"
          (Response.status_to_string r.Response.status);
        Alcotest.(check int) "answered on the retry" 2 r.Response.attempts)
      rs;
    check_invariant server;
    Server.stats server
  in
  let seq =
    Server.create ~lib ~model ~fault ~max_retries:2 ~retry_backoff_ms:0.01 ()
  in
  let s_seq = check seq in
  (* same schedule through real domain workers: the pool reports each
     dropped message and the coordinator recovers it *)
  let pooled =
    Server.create ~lib ~model ~workers:2 ~queue_capacity:8 ~fault ~max_retries:2
      ~retry_backoff_ms:0.01 ()
  in
  let s_pooled = check pooled in
  Server.shutdown pooled;
  Alcotest.(check int) "same retry count" s_seq.Server.retries
    s_pooled.Server.retries

let test_drop_exhausts_retries () =
  let model = Lazy.force model in
  let fault =
    Fault.create
      { Fault.default with Fault.seed = 9; drop_rate = 1.0; drop_attempts = 10 }
  in
  let server =
    Server.create ~lib ~model ~fault ~max_retries:1 ~retry_backoff_ms:0.01 ()
  in
  let rs = Server.run_batch server [ Request.make ~id:0 "tweet alice" ] in
  (match rs with
  | [ r ] ->
      Alcotest.(check string) "status error" "error"
        (Response.status_to_string r.Response.status);
      Alcotest.(check bool) "drop named in the error" true
        (Option.is_some r.Response.error)
  | _ -> Alcotest.fail "expected exactly one response");
  check_invariant server

(* --- deadlines -------------------------------------------------------------------------- *)

let test_deadline_timeout_with_timings () =
  let model = Lazy.force model in
  (* every decode gets 50 virtual ms injected; deadlines are 5 ms, so every
     uncached request times out regardless of machine speed *)
  let fault =
    Fault.create
      { Fault.default with
        Fault.seed = 3;
        latency_rate = 1.0;
        latency_ns = 50e6 }
  in
  let server = Server.create ~lib ~model ~fault () in
  let reqs =
    List.mapi (fun i u -> Request.make ~deadline_ms:5.0 ~id:i u) utterances
  in
  let rs = Server.run_batch server reqs in
  List.iter
    (fun (r : Response.t) ->
      Alcotest.(check string) "status timeout" "timeout"
        (Response.status_to_string r.Response.status);
      Alcotest.(check (option string)) "no program delivered" None
        r.Response.program_text;
      (* stage timings are still populated: the injected decode latency is
         visible in the parse stage and the total exceeds the deadline *)
      Alcotest.(check bool) "parse stage includes injected latency" true
        (r.Response.timing.Response.parse_ns >= 50e6);
      Alcotest.(check bool) "total exceeds deadline" true
        (r.Response.timing.Response.total_ns > 5e6);
      Alcotest.(check bool) "tokenize stage measured" true
        (r.Response.timing.Response.tokenize_ns >= 0.0))
    rs;
  let s = Server.stats server in
  Alcotest.(check int) "all timed out" (List.length reqs) s.Server.timeouts;
  check_invariant server;
  (* the timed-out decode still warmed the cache, and cache hits always
     answer: the same utterance under the same deadline now succeeds *)
  let again =
    Server.handle server (Request.make ~deadline_ms:5.0 ~id:100 "tweet alice")
  in
  Alcotest.(check string) "cache hit beats deadline" "ok"
    (Response.status_to_string again.Response.status);
  Alcotest.(check bool) "served from cache" true again.Response.from_cache;
  check_invariant server

(* --- admission control / shedding -------------------------------------------------------- *)

let test_queue_full_sheds () =
  let model = Lazy.force model in
  let server =
    Server.create ~lib ~model ~admission_capacity:2 ~degrade:false ()
  in
  let reqs = List.mapi (fun i u -> Request.make ~id:i u) (List.filteri (fun i _ -> i < 5) utterances) in
  let rs = Server.run_batch server reqs in
  let statuses =
    List.map (fun (r : Response.t) -> Response.status_to_string r.Response.status) rs
  in
  (* the batch "arrives at once": the first two requests fit the queue, the
     rest are shed explicitly rather than blocking *)
  Alcotest.(check (list string)) "first fit, rest shed"
    [ "ok"; "ok"; "overloaded"; "overloaded"; "overloaded" ] statuses;
  List.iter
    (fun (r : Response.t) ->
      if r.Response.status = Response.Overloaded then begin
        Alcotest.(check (option string)) "no program" None r.Response.program_text;
        Alcotest.(check int) "never attempted" 0 r.Response.attempts
      end)
    rs;
  let s = Server.stats server in
  Alcotest.(check int) "shed counter" 3 s.Server.shed;
  Alcotest.(check int) "requests include shed" 5 s.Server.requests;
  check_invariant server

(* --- graceful degradation ------------------------------------------------------------------ *)

let test_saturated_pool_degrades_to_cache () =
  let model = Lazy.force model in
  let server = Server.create ~lib ~model ~admission_capacity:1 () in
  let cold_server = Server.create ~lib ~model () in
  (* warm: one clean parse of "tweet alice" *)
  (match Server.run_batch server [ Request.make ~id:0 "tweet alice" ] with
  | [ r ] ->
      Alcotest.(check string) "warmup ok" "ok"
        (Response.status_to_string r.Response.status)
  | _ -> Alcotest.fail "expected one warmup response");
  (* saturate: capacity 1, four requests. The first is served; repeats of
     the known utterance are answered from the degraded cache; the unknown
     utterance is shed. *)
  let rs =
    Server.run_batch server
      [ Request.make ~id:1 "tweet alice";
        Request.make ~id:2 "tweet alice";
        Request.make ~id:3 "tweet alice";
        Request.make ~id:4 "tweet bob" ]
  in
  let cold = Server.handle cold_server (Request.make ~id:0 "tweet alice") in
  (match rs with
  | [ r1; r2; r3; r4 ] ->
      Alcotest.(check string) "in-budget request served" "ok"
        (Response.status_to_string r1.Response.status);
      Alcotest.(check bool) "not degraded" false r1.Response.degraded;
      List.iter
        (fun (r : Response.t) ->
          Alcotest.(check string) "degraded answer is ok" "ok"
            (Response.status_to_string r.Response.status);
          Alcotest.(check bool) "marked degraded" true r.Response.degraded;
          Alcotest.(check bool) "from cache" true r.Response.from_cache;
          (* byte-identical to an independent cold parse *)
          Alcotest.(check (option string)) "degraded = cold parse"
            cold.Response.program_text r.Response.program_text;
          Alcotest.(check (list string)) "degraded = cold nn tokens"
            cold.Response.nn_tokens r.Response.nn_tokens)
        [ r2; r3 ];
      Alcotest.(check string) "unknown utterance shed" "overloaded"
        (Response.status_to_string r4.Response.status)
  | _ -> Alcotest.fail "expected four responses");
  let s = Server.stats server in
  Alcotest.(check int) "degraded counter" 2 s.Server.degraded;
  Alcotest.(check int) "shed counter" 1 s.Server.shed;
  check_invariant server

(* --- determinism across paths and runs ------------------------------------------------------- *)

let mixed_fault =
  lazy
    (Fault.create
       { Fault.default with
         Fault.seed = 21;
         crash_rate = 0.5;
         crash_attempts = 1;
         drop_rate = 0.3;
         drop_attempts = 1 })

let test_fault_schedule_repeatable () =
  let model = Lazy.force model in
  let requests =
    Traffic.generate ~rng:(Genie_util.Rng.create 11) ~utterances:utterances 40
  in
  let run ~workers () =
    let server =
      Server.create ~lib ~model ~workers ~queue_capacity:8
        ~fault:(Lazy.force mixed_fault) ~max_retries:3 ~retry_backoff_ms:0.01 ()
    in
    let rs = Server.run_batch server requests in
    Server.shutdown server;
    rs
  in
  (* same configuration, fresh server: byte-identical outcomes *)
  Alcotest.(check (list string)) "sequential runs identical"
    (List.map digest (run ~workers:0 ()))
    (List.map digest (run ~workers:0 ()));
  Alcotest.(check (list string)) "pooled runs identical"
    (List.map digest (run ~workers:3 ()))
    (List.map digest (run ~workers:3 ()));
  (* and the schedule's outcomes do not depend on the worker count *)
  Alcotest.(check (list string)) "pooled = sequential under faults"
    (List.map cross_path_digest (run ~workers:0 ()))
    (List.map cross_path_digest (run ~workers:3 ()))

let test_pooled_faults_account_for_every_request () =
  let model = Lazy.force model in
  let n = 60 in
  let requests =
    Traffic.generate ~rng:(Genie_util.Rng.create 17) ~utterances:utterances n
  in
  let server =
    Server.create ~lib ~model ~workers:3 ~queue_capacity:8
      ~fault:(Lazy.force mixed_fault) ~max_retries:3 ~retry_backoff_ms:0.01 ()
  in
  let rs = Server.run_batch server requests in
  Server.shutdown server;
  (* exactly one response per submitted id: nothing dropped, nothing
     duplicated, no deadlock *)
  Alcotest.(check (list int)) "every id answered exactly once"
    (List.init n Fun.id)
    (List.map (fun (r : Response.t) -> r.Response.id) rs);
  (* crash and drop schedules overlap at attempt 0 at most once per request,
     so with retries available every request resolves cleanly *)
  List.iter
    (fun (r : Response.t) ->
      Alcotest.(check bool) "resolved ok" true (r.Response.status = Response.Ok);
      Alcotest.(check bool) "at most one retry" true (r.Response.attempts <= 2))
    rs;
  let m = Server.metrics_snapshot server in
  Alcotest.(check int) "requests" n m.Metrics.requests;
  Alcotest.(check int) "no silent drops: errors" 0 m.Metrics.errors;
  Alcotest.(check int) "no silent drops: timeouts" 0 m.Metrics.timeouts;
  Alcotest.(check int) "no silent drops: shed" 0 m.Metrics.shed;
  check_invariant server

let test_pooled_admission_deterministic () =
  let model = Lazy.force model in
  (* one hot key: every request shards to the same worker, so exactly
     [admission_capacity] fit and the overflow is shed, deterministically *)
  let run () =
    let server =
      Server.create ~lib ~model ~workers:2 ~queue_capacity:8
        ~admission_capacity:5 ~degrade:false ()
    in
    let rs =
      Server.run_batch server
        (List.init 12 (fun i -> Request.make ~id:i "tweet alice"))
    in
    let stats = Server.stats server in
    check_invariant server;
    Server.shutdown server;
    (List.map digest rs, stats)
  in
  let d1, s1 = run () in
  let d2, s2 = run () in
  Alcotest.(check (list string)) "repeatable" d1 d2;
  Alcotest.(check int) "five served" 5 s1.Server.ok;
  Alcotest.(check int) "seven shed" 7 s1.Server.shed;
  Alcotest.(check int) "same shed count across runs" s1.Server.shed s2.Server.shed

(* --- metrics ----------------------------------------------------------------------- *)

let test_metrics_percentiles () =
  let m = Metrics.create () in
  (* 90 requests at ~1ms, 10 at ~100ms *)
  for _ = 1 to 90 do
    Metrics.record m ~latency_ns:1e6 ()
  done;
  for _ = 1 to 10 do
    Metrics.record m ~latency_ns:1e8 ()
  done;
  let s = Metrics.snapshot m in
  Alcotest.(check int) "requests" 100 s.Metrics.requests;
  Alcotest.(check int) "all ok" 100 s.Metrics.ok;
  (* geometric buckets have <= ~12% relative error *)
  Alcotest.(check bool) "p50 ~ 1ms" true (s.Metrics.p50_ms > 0.8 && s.Metrics.p50_ms < 1.3);
  Alcotest.(check bool) "p95 ~ 100ms" true (s.Metrics.p95_ms > 80.0 && s.Metrics.p95_ms < 130.0);
  Alcotest.(check bool) "p99 ~ 100ms" true (s.Metrics.p99_ms > 80.0 && s.Metrics.p99_ms < 130.0);
  Alcotest.(check bool) "mean between" true (s.Metrics.mean_ms > 5.0 && s.Metrics.mean_ms < 20.0);
  Metrics.reset m;
  Alcotest.(check int) "reset" 0 (Metrics.snapshot m).Metrics.requests

let test_metrics_concurrent_records () =
  let m = Metrics.create () in
  let bump () = for _ = 1 to 500 do Metrics.record m ~latency_ns:2e6 () done in
  let d = Domain.spawn bump in
  bump ();
  Domain.join d;
  Alcotest.(check int) "no lost updates" 1000 (Metrics.snapshot m).Metrics.requests

(* --- traffic ------------------------------------------------------------------------ *)

let test_traffic_deterministic_and_zipfian () =
  let gen seed =
    List.map
      (fun (r : Request.t) -> r.Request.utterance)
      (Traffic.generate ~rng:(Genie_util.Rng.create seed) ~utterances:utterances 400)
  in
  Alcotest.(check (list string)) "deterministic" (gen 5) (gen 5);
  let drawn = gen 5 in
  List.iter
    (fun u -> Alcotest.(check bool) "from corpus" true (List.mem u utterances))
    drawn;
  (* Zipf skew: the most popular utterance dominates its uniform share *)
  let counts = Hashtbl.create 8 in
  List.iter
    (fun u -> Hashtbl.replace counts u (1 + Option.value ~default:0 (Hashtbl.find_opt counts u)))
    drawn;
  let top = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  let uniform_share = 400 / List.length utterances in
  Alcotest.(check bool) "zipfian head" true (top > 2 * uniform_share);
  (* deadlines ride along *)
  let with_deadline =
    Traffic.generate ~deadline_ms:7.5
      ~rng:(Genie_util.Rng.create 5)
      ~utterances:utterances 3
  in
  List.iter
    (fun (r : Request.t) ->
      Alcotest.(check (option (float 0.0))) "deadline attached" (Some 7.5e6)
        r.Request.deadline_ns)
    with_deadline

(* --- server end to end ---------------------------------------------------------------- *)

let test_server_execute_and_stats () =
  let model = Lazy.force model in
  let server = Server.create ~lib ~model ~cache_capacity:4 () in
  let reqs =
    List.mapi
      (fun i u -> Request.make ~execute:true ~ticks:2 ~id:i u)
      [ "tweet alice"; "tweet alice"; "get a cat picture" ]
  in
  let rs = Server.run_batch server reqs in
  Alcotest.(check int) "three responses" 3 (List.length rs);
  List.iter
    (fun (r : Response.t) ->
      Alcotest.(check bool) "parsed" true (Option.is_some r.Response.program);
      Alcotest.(check string) "status ok" "ok"
        (Response.status_to_string r.Response.status);
      Alcotest.(check (option string)) "no error" None r.Response.error;
      Alcotest.(check bool) "timing positive" true (r.Response.timing.Response.total_ns > 0.0))
    rs;
  (* the tweet action ran: side effects observed *)
  Alcotest.(check bool) "side effects" true
    (List.exists (fun (r : Response.t) -> r.Response.side_effects > 0) rs);
  let s = Server.stats server in
  Alcotest.(check int) "requests" 3 s.Server.requests;
  Alcotest.(check int) "exec runs" 3 s.Server.exec_runs;
  Alcotest.(check int) "one hit" 1 s.Server.cache_hits;
  Alcotest.(check int) "two misses" 2 s.Server.cache_misses;
  Alcotest.(check bool) "throughput measured" true (s.Server.throughput_rps > 0.0);
  Alcotest.(check bool) "p50 measured" true (s.Server.p50_ms > 0.0);
  check_invariant server

(* --- compiled execution path -------------------------------------------------------- *)

(* everything deterministic about an executed response, execution results
   included — the compiled path must reproduce all of it byte for byte *)
let exec_digest (r : Response.t) =
  Printf.sprintf "%s notif=%d fx=%d err=%s" (digest r) r.Response.notifications
    r.Response.side_effects
    (Option.value ~default:"-" r.Response.error)

let exec_requests n seed =
  List.map
    (fun (r : Request.t) ->
      Request.make ~execute:true
        ~ticks:(1 + (r.Request.id mod 4))
        ~id:r.Request.id r.Request.utterance)
    (Traffic.generate ~rng:(Genie_util.Rng.create seed) ~utterances:utterances n)

(* Compiled execution (bytecode + compiled-program cache) must be
   observationally identical to the tree-walking interpreter: same statuses,
   same notification/side-effect counts, same errors — sequential or pooled,
   at every worker count. *)
let test_compiled_matches_interpreted () =
  let model = Lazy.force model in
  let requests = exec_requests 40 41 in
  let run ~workers ~compiled () =
    let server = Server.create ~lib ~model ~workers ~queue_capacity:16 ~compiled () in
    let rs = Server.run_batch server requests in
    check_invariant server;
    let s = Server.stats server in
    Server.shutdown server;
    (List.map exec_digest rs, s)
  in
  List.iter
    (fun workers ->
      let interp, si = run ~workers ~compiled:false () in
      let comp, sc = run ~workers ~compiled:true () in
      Alcotest.(check (list string))
        (Printf.sprintf "compiled = interpreted at %d workers" workers)
        interp comp;
      (* the interpreter path never touches the compiled-program cache *)
      Alcotest.(check int) "interpreter: no compile lookups" 0
        (si.Server.compile_hits + si.Server.compile_misses);
      (* the compiled path looks up once per execution and compiles only
         distinct programs *)
      Alcotest.(check int) "one compile lookup per execution" sc.Server.exec_runs
        (sc.Server.compile_hits + sc.Server.compile_misses);
      Alcotest.(check bool) "distinct programs compiled once" true
        (sc.Server.compile_misses <= List.length utterances);
      Alcotest.(check bool) "cache hits on repeats" true
        (sc.Server.compile_hits > 0))
    [ 0; 1; 2; 4 ]

(* The same equivalence must survive the robustness layer: a seeded fault
   schedule (crashes + drops + retries) makes the same decisions whether the
   engines execute compiled or interpreted, so responses stay identical. *)
let test_compiled_matches_interpreted_under_faults () =
  let model = Lazy.force model in
  let requests = exec_requests 40 43 in
  let run ~workers ~compiled () =
    let server =
      Server.create ~lib ~model ~workers ~queue_capacity:8
        ~fault:(Lazy.force mixed_fault) ~max_retries:3 ~retry_backoff_ms:0.01
        ~compiled ()
    in
    let rs = Server.run_batch server requests in
    check_invariant server;
    Server.shutdown server;
    List.map exec_digest rs
  in
  List.iter
    (fun workers ->
      Alcotest.(check (list string))
        (Printf.sprintf "compiled = interpreted under faults at %d workers" workers)
        (run ~workers ~compiled:false ())
        (run ~workers ~compiled:true ()))
    [ 0; 1; 2; 4 ]

(* Tiny compiled-program cache: constant eviction, still byte-identical. *)
let test_compiled_cache_thrash_identical () =
  let model = Lazy.force model in
  let requests = exec_requests 30 47 in
  let run ~compile_cache_capacity () =
    let server = Server.create ~lib ~model ~compile_cache_capacity () in
    let rs = Server.run_batch server requests in
    let s = Server.stats server in
    Server.shutdown server;
    (List.map exec_digest rs, s)
  in
  let roomy, _ = run ~compile_cache_capacity:64 () in
  let tight, st = run ~compile_cache_capacity:1 () in
  let off, s0 = run ~compile_cache_capacity:0 () in
  Alcotest.(check (list string)) "capacity 1 = capacity 64" roomy tight;
  Alcotest.(check (list string)) "capacity 0 = capacity 64" roomy off;
  Alcotest.(check bool) "capacity 1 evicts" true (st.Server.compile_evictions > 0);
  Alcotest.(check int) "capacity 0 caches nothing" 0 s0.Server.compile_entries

(* Regression: the serve hot path must stringify each distinct program once
   (memoized next to the cached parse), not once per request — cached
   requests, responses and compiled-cache keys all reuse that text. *)
let test_no_restringify_on_cache_hit () =
  let model = Lazy.force model in
  let server = Server.create ~lib ~model () in
  (* warm every utterance: parse-cache and compile-cache misses happen here *)
  List.iteri
    (fun i u -> ignore (Server.handle server (Request.make ~execute:true ~id:i u)))
    utterances;
  let before = Printer.program_print_count () in
  let reqs =
    List.mapi
      (fun i u -> Request.make ~execute:true ~id:(100 + i) u)
      (utterances @ utterances @ utterances)
  in
  let rs = Server.run_batch server reqs in
  List.iter
    (fun (r : Response.t) ->
      Alcotest.(check string) "served ok" "ok"
        (Response.status_to_string r.Response.status);
      Alcotest.(check bool) "from cache" true r.Response.from_cache)
    rs;
  Alcotest.(check int) "zero re-stringifications across cached requests" 0
    (Printer.program_print_count () - before);
  Server.shutdown server

(* --- batched predict path ---------------------------------------------------------- *)

(* The batched engine path (one aligner pass over all distinct uncached
   utterances) must be observationally identical to per-request processing:
   responses byte for byte, cache flags included, sequential or pooled. *)
let test_batched_predict_identical () =
  let model = Lazy.force model in
  let requests =
    Traffic.generate ~rng:(Genie_util.Rng.create 31) ~utterances:utterances 40
  in
  let run ?(workers = 0) ~batched () =
    let server = Server.create ~lib ~model ~workers () in
    let rs = Server.run_batch ~batched server requests in
    check_invariant server;
    Server.shutdown server;
    List.map digest rs
  in
  let reference = run ~batched:false () in
  Alcotest.(check (list string)) "batched = unbatched (sequential)" reference
    (run ~batched:true ());
  Alcotest.(check (list string)) "batched = unbatched (pooled)" reference
    (run ~workers:2 ~batched:true ())

let suite =
  [ Alcotest.test_case "lru eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "batched predict = per-request" `Quick
      test_batched_predict_identical;
    Alcotest.test_case "lru capacity 1" `Quick test_lru_capacity_one;
    Alcotest.test_case "lru capacity 0" `Quick test_lru_capacity_zero;
    Alcotest.test_case "cached = cold parse" `Quick test_cached_response_identical;
    Alcotest.test_case "chan fifo and close" `Quick test_chan_fifo_and_close;
    Alcotest.test_case "chan try_push" `Quick test_chan_try_push;
    Alcotest.test_case "chan try_push capacity boundary" `Quick
      test_chan_try_push_capacity_boundary;
    Alcotest.test_case "cache eviction under alternating keys" `Quick
      test_cache_eviction_under_alternating_keys;
    Alcotest.test_case "concurrent same-key coalesces" `Quick
      test_concurrent_same_key_coalesces;
    Alcotest.test_case "pool roundtrip" `Quick test_pool_roundtrip;
    Alcotest.test_case "pool exception surfaces" `Quick test_pool_handler_exception_surfaces;
    Alcotest.test_case "pool drain_results pairs failures" `Quick
      test_pool_drain_results_pairs_failures;
    Alcotest.test_case "pool fault hook drops" `Quick test_pool_fault_hook_drops;
    Alcotest.test_case "pooled = sequential" `Quick test_pool_matches_sequential;
    Alcotest.test_case "fault spec roundtrip" `Quick test_fault_spec_roundtrip;
    Alcotest.test_case "fault decisions deterministic" `Quick
      test_fault_decisions_deterministic;
    Alcotest.test_case "backoff deterministic + bounded" `Quick
      test_backoff_deterministic_and_bounded;
    Alcotest.test_case "crash retried and answered" `Quick
      test_crash_retried_and_answered;
    Alcotest.test_case "crash exhausts retries" `Quick test_crash_exhausts_retries;
    Alcotest.test_case "drop retried and answered" `Quick
      test_drop_retried_and_answered;
    Alcotest.test_case "drop exhausts retries" `Quick test_drop_exhausts_retries;
    Alcotest.test_case "deadline timeout keeps timings" `Quick
      test_deadline_timeout_with_timings;
    Alcotest.test_case "queue full sheds" `Quick test_queue_full_sheds;
    Alcotest.test_case "saturated pool degrades to cache" `Quick
      test_saturated_pool_degrades_to_cache;
    Alcotest.test_case "fault schedule repeatable" `Quick
      test_fault_schedule_repeatable;
    Alcotest.test_case "pooled faults account for all" `Quick
      test_pooled_faults_account_for_every_request;
    Alcotest.test_case "pooled admission deterministic" `Quick
      test_pooled_admission_deterministic;
    Alcotest.test_case "metrics percentiles" `Quick test_metrics_percentiles;
    Alcotest.test_case "metrics concurrent" `Quick test_metrics_concurrent_records;
    Alcotest.test_case "traffic zipfian" `Quick test_traffic_deterministic_and_zipfian;
    Alcotest.test_case "server execute + stats" `Quick test_server_execute_and_stats;
    Alcotest.test_case "compiled = interpreted (0/2/4 workers)" `Quick
      test_compiled_matches_interpreted;
    Alcotest.test_case "compiled = interpreted under faults" `Quick
      test_compiled_matches_interpreted_under_faults;
    Alcotest.test_case "compiled cache thrash identical" `Quick
      test_compiled_cache_thrash_identical;
    Alcotest.test_case "no re-stringify on cache hit" `Quick
      test_no_restringify_on_cache_hit ]
