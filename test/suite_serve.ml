(* Tests for the serving layer: LRU parse cache, bounded channel, Domain
   worker pool, metrics histogram, Zipfian traffic, and the server facade.

   Servers default to the sequential path (workers = 0); only the tests that
   specifically exercise the pool spawn domains, and they use small worker
   counts so the suite stays robust on single-core machines. *)

open Genie_thingtalk
open Genie_serve

let lib = Genie_thingpedia.Thingpedia.core_library ()
let parse = Parser.parse_program

(* A tiny but non-degenerate training set (mirrors suite_parser_model). *)
let mini_dataset () =
  let mk sentence src =
    Genie_dataset.Example.make ~id:0 ~tokens:(Genie_util.Tok.tokenize sentence)
      ~program:(parse src) ~source:Genie_dataset.Example.Synthesized ()
  in
  List.concat
    (List.init 6 (fun i ->
         let name = List.nth [ "alice"; "bob"; "carol"; "dan"; "eve"; "mallory" ] i in
         [ mk
             (Printf.sprintf "tweet %s" name)
             (Printf.sprintf "now => @com.twitter.post(status = \"%s\");" name);
           mk
             (Printf.sprintf "show me emails from %s" name)
             (Printf.sprintf
                "now => (@com.gmail.inbox()) filter sender_name == \"%s\" => notify;" name);
           mk "get a cat picture" "now => @com.thecatapi.get() => notify;";
           mk "when i receive an email , get a cat picture"
             "monitor (@com.gmail.inbox()) => @com.thecatapi.get() => notify;" ]))

let model = lazy (Genie_parser_model.Aligner.train lib (mini_dataset ()))

let utterances =
  [ "tweet alice"; "tweet bob"; "show me emails from carol"; "get a cat picture";
    "when i receive an email , get a cat picture"; "tweet dan";
    "show me emails from eve"; "tweet mallory" ]

(* --- parse cache -------------------------------------------------------------- *)

let test_lru_eviction_order () =
  let c = Parse_cache.create ~capacity:2 in
  Parse_cache.add c "a" 1;
  Parse_cache.add c "b" 2;
  Alcotest.(check (list string)) "mru order" [ "b"; "a" ] (Parse_cache.keys_mru c);
  (* touching [a] protects it; adding [c] evicts [b] *)
  Alcotest.(check (option int)) "hit a" (Some 1) (Parse_cache.find c "a");
  Parse_cache.add c "c" 3;
  Alcotest.(check (list string)) "b evicted" [ "c"; "a" ] (Parse_cache.keys_mru c);
  Alcotest.(check bool) "b gone" false (Parse_cache.mem c "b");
  let s = Parse_cache.stats c in
  Alcotest.(check int) "one eviction" 1 s.Parse_cache.evictions;
  Alcotest.(check int) "one hit" 1 s.Parse_cache.hits

let test_lru_capacity_one () =
  let c = Parse_cache.create ~capacity:1 in
  Parse_cache.add c "a" 1;
  Alcotest.(check (option int)) "a cached" (Some 1) (Parse_cache.find c "a");
  Parse_cache.add c "b" 2;
  Alcotest.(check bool) "a evicted" false (Parse_cache.mem c "a");
  Alcotest.(check (option int)) "b cached" (Some 2) (Parse_cache.find c "b");
  Alcotest.(check int) "length" 1 (Parse_cache.length c);
  (* re-adding the resident key must not evict it *)
  Parse_cache.add c "b" 20;
  Alcotest.(check (option int)) "replaced in place" (Some 20) (Parse_cache.find c "b");
  Alcotest.(check int) "single eviction" 1 (Parse_cache.stats c).Parse_cache.evictions

let test_lru_capacity_zero () =
  let c = Parse_cache.create ~capacity:0 in
  Parse_cache.add c "a" 1;
  Alcotest.(check (option int)) "nothing stored" None (Parse_cache.find c "a");
  Alcotest.(check (option int)) "still nothing" None (Parse_cache.find c "a");
  Alcotest.(check int) "empty" 0 (Parse_cache.length c);
  Alcotest.(check int) "two misses" 2 (Parse_cache.stats c).Parse_cache.misses

(* --- cached parse is byte-identical to a cold parse ----------------------------- *)

let test_cached_response_identical () =
  let model = Lazy.force model in
  let server = Server.create ~lib ~model () in
  let cold_server = Server.create ~lib ~model () in
  List.iter
    (fun utterance ->
      let r1 = Server.handle server (Request.make ~id:0 utterance) in
      let r2 = Server.handle server (Request.make ~id:1 utterance) in
      let cold = Server.handle cold_server (Request.make ~id:2 utterance) in
      Alcotest.(check bool) "first is a miss" false r1.Response.from_cache;
      Alcotest.(check bool) "second is a hit" true r2.Response.from_cache;
      (* the cached response equals both the original and an independent
         cold parse, byte for byte *)
      Alcotest.(check (option string)) "hit = miss program"
        r1.Response.program_text r2.Response.program_text;
      Alcotest.(check (list string)) "hit = miss nn tokens"
        r1.Response.nn_tokens r2.Response.nn_tokens;
      Alcotest.(check (float 0.0)) "hit = miss score" r1.Response.score
        r2.Response.score;
      Alcotest.(check (option string)) "hit = cold program"
        cold.Response.program_text r2.Response.program_text;
      Alcotest.(check (list string)) "hit = cold nn tokens"
        cold.Response.nn_tokens r2.Response.nn_tokens)
    utterances;
  let s = Server.stats server in
  Alcotest.(check int) "hits" (List.length utterances) s.Server.cache_hits;
  Alcotest.(check int) "misses" (List.length utterances) s.Server.cache_misses

(* --- chan ----------------------------------------------------------------------- *)

let test_chan_fifo_and_close () =
  let c = Chan.create ~capacity:4 in
  Chan.push c 1;
  Chan.push c 2;
  Chan.push c 3;
  Alcotest.(check int) "length" 3 (Chan.length c);
  Chan.close c;
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Chan.pop c);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Chan.pop c);
  Alcotest.(check (option int)) "fifo 3" (Some 3) (Chan.pop c);
  Alcotest.(check (option int)) "drained" None (Chan.pop c);
  Alcotest.check_raises "push after close" Chan.Closed (fun () -> Chan.push c 4)

(* --- pool ------------------------------------------------------------------------ *)

let test_pool_roundtrip () =
  let pool =
    Pool.create ~workers:2 ~queue_capacity:4 ~handler:(fun w x -> (w, x * x))
  in
  let items = List.init 20 (fun i -> i) in
  List.iter (fun i -> Pool.submit pool ~worker:i i) items;
  let results = Pool.drain pool 20 in
  Pool.shutdown pool;
  Alcotest.(check int) "all results" 20 (List.length results);
  let squares = List.sort compare (List.map snd results) in
  Alcotest.(check (list int)) "squares" (List.map (fun i -> i * i) items) squares;
  (* sharding respected: worker w only processed items with i mod 2 = w *)
  List.iter
    (fun (w, sq) ->
      let i = int_of_float (sqrt (float_of_int sq) +. 0.5) in
      Alcotest.(check int) "sharded to the right worker" (i mod 2) w)
    results

let test_pool_handler_exception_surfaces () =
  let pool =
    Pool.create ~workers:2 ~queue_capacity:2 ~handler:(fun _ x ->
        if x = 3 then failwith "boom" else x)
  in
  List.iter (fun i -> Pool.submit pool ~worker:i i) [ 0; 1; 2; 3 ];
  (match Pool.drain pool 4 with
  | _ -> Alcotest.fail "expected the handler exception to re-raise"
  | exception Failure msg -> Alcotest.(check string) "message" "boom" msg);
  Pool.shutdown pool

(* --- worker-pool determinism: pooled = sequential --------------------------------- *)

let test_pool_matches_sequential () =
  let model = Lazy.force model in
  let requests =
    Traffic.generate ~rng:(Genie_util.Rng.create 11) ~utterances:utterances 60
  in
  let seq = Server.create ~lib ~model () in
  let seq_responses = Server.run_batch seq requests in
  let pooled = Server.create ~lib ~model ~workers:3 ~queue_capacity:8 () in
  let pooled_responses = Server.run_batch pooled requests in
  Server.shutdown pooled;
  Alcotest.(check int) "same count" (List.length seq_responses)
    (List.length pooled_responses);
  (* identical multiset of (id, parse) -- run_batch sorts by id, so direct
     pairwise comparison checks the multiset *)
  List.iter2
    (fun (a : Response.t) (b : Response.t) ->
      Alcotest.(check int) "same id" a.Response.id b.Response.id;
      Alcotest.(check string) "same utterance" a.Response.utterance b.Response.utterance;
      Alcotest.(check (option string)) "same program" a.Response.program_text
        b.Response.program_text;
      Alcotest.(check (list string)) "same nn tokens" a.Response.nn_tokens
        b.Response.nn_tokens)
    seq_responses pooled_responses;
  (* key-sharding means the pooled run decodes each distinct key exactly
     once, like the sequential run *)
  let misses s = (Server.stats s).Server.cache_misses in
  Alcotest.(check int) "same decode count" (misses seq) (misses pooled)

(* --- metrics ----------------------------------------------------------------------- *)

let test_metrics_percentiles () =
  let m = Metrics.create () in
  (* 90 requests at ~1ms, 10 at ~100ms *)
  for _ = 1 to 90 do
    Metrics.record m ~latency_ns:1e6
  done;
  for _ = 1 to 10 do
    Metrics.record m ~latency_ns:1e8
  done;
  let s = Metrics.snapshot m in
  Alcotest.(check int) "requests" 100 s.Metrics.requests;
  (* geometric buckets have <= ~12% relative error *)
  Alcotest.(check bool) "p50 ~ 1ms" true (s.Metrics.p50_ms > 0.8 && s.Metrics.p50_ms < 1.3);
  Alcotest.(check bool) "p95 ~ 100ms" true (s.Metrics.p95_ms > 80.0 && s.Metrics.p95_ms < 130.0);
  Alcotest.(check bool) "p99 ~ 100ms" true (s.Metrics.p99_ms > 80.0 && s.Metrics.p99_ms < 130.0);
  Alcotest.(check bool) "mean between" true (s.Metrics.mean_ms > 5.0 && s.Metrics.mean_ms < 20.0);
  Metrics.reset m;
  Alcotest.(check int) "reset" 0 (Metrics.snapshot m).Metrics.requests

let test_metrics_concurrent_records () =
  let m = Metrics.create () in
  let bump () = for _ = 1 to 500 do Metrics.record m ~latency_ns:2e6 done in
  let d = Domain.spawn bump in
  bump ();
  Domain.join d;
  Alcotest.(check int) "no lost updates" 1000 (Metrics.snapshot m).Metrics.requests

(* --- traffic ------------------------------------------------------------------------ *)

let test_traffic_deterministic_and_zipfian () =
  let gen seed =
    List.map
      (fun (r : Request.t) -> r.Request.utterance)
      (Traffic.generate ~rng:(Genie_util.Rng.create seed) ~utterances:utterances 400)
  in
  Alcotest.(check (list string)) "deterministic" (gen 5) (gen 5);
  let drawn = gen 5 in
  List.iter
    (fun u -> Alcotest.(check bool) "from corpus" true (List.mem u utterances))
    drawn;
  (* Zipf skew: the most popular utterance dominates its uniform share *)
  let counts = Hashtbl.create 8 in
  List.iter
    (fun u -> Hashtbl.replace counts u (1 + Option.value ~default:0 (Hashtbl.find_opt counts u)))
    drawn;
  let top = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  let uniform_share = 400 / List.length utterances in
  Alcotest.(check bool) "zipfian head" true (top > 2 * uniform_share)

(* --- server end to end ---------------------------------------------------------------- *)

let test_server_execute_and_stats () =
  let model = Lazy.force model in
  let server = Server.create ~lib ~model ~cache_capacity:4 () in
  let reqs =
    List.mapi
      (fun i u -> Request.make ~execute:true ~ticks:2 ~id:i u)
      [ "tweet alice"; "tweet alice"; "get a cat picture" ]
  in
  let rs = Server.run_batch server reqs in
  Alcotest.(check int) "three responses" 3 (List.length rs);
  List.iter
    (fun (r : Response.t) ->
      Alcotest.(check bool) "parsed" true (Option.is_some r.Response.program);
      Alcotest.(check (option string)) "no error" None r.Response.error;
      Alcotest.(check bool) "timing positive" true (r.Response.timing.Response.total_ns > 0.0))
    rs;
  (* the tweet action ran: side effects observed *)
  Alcotest.(check bool) "side effects" true
    (List.exists (fun (r : Response.t) -> r.Response.side_effects > 0) rs);
  let s = Server.stats server in
  Alcotest.(check int) "requests" 3 s.Server.requests;
  Alcotest.(check int) "exec runs" 3 s.Server.exec_runs;
  Alcotest.(check int) "one hit" 1 s.Server.cache_hits;
  Alcotest.(check int) "two misses" 2 s.Server.cache_misses;
  Alcotest.(check bool) "throughput measured" true (s.Server.throughput_rps > 0.0);
  Alcotest.(check bool) "p50 measured" true (s.Server.p50_ms > 0.0)

let suite =
  [ Alcotest.test_case "lru eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "lru capacity 1" `Quick test_lru_capacity_one;
    Alcotest.test_case "lru capacity 0" `Quick test_lru_capacity_zero;
    Alcotest.test_case "cached = cold parse" `Quick test_cached_response_identical;
    Alcotest.test_case "chan fifo and close" `Quick test_chan_fifo_and_close;
    Alcotest.test_case "pool roundtrip" `Quick test_pool_roundtrip;
    Alcotest.test_case "pool exception surfaces" `Quick test_pool_handler_exception_surfaces;
    Alcotest.test_case "pooled = sequential" `Quick test_pool_matches_sequential;
    Alcotest.test_case "metrics percentiles" `Quick test_metrics_percentiles;
    Alcotest.test_case "metrics concurrent" `Quick test_metrics_concurrent_records;
    Alcotest.test_case "traffic zipfian" `Quick test_traffic_deterministic_and_zipfian;
    Alcotest.test_case "server execute + stats" `Quick test_server_execute_and_stats ]
