(* Tests for gazettes, parameter replacement and PPDB augmentation
   (section 3.3). *)

open Genie_thingtalk

let lib = Genie_thingpedia.Thingpedia.core_library ()
let parse = Parser.parse_program
let gz = Genie_augment.Gazettes.create ~size:500 ()

let test_gazettes_deterministic () =
  let a = Genie_augment.Gazettes.create ~size:200 () in
  let b = Genie_augment.Gazettes.create ~size:200 () in
  List.iter2
    (fun (n1, p1) (n2, p2) ->
      Alcotest.(check string) "same pool name" n1 n2;
      Alcotest.(check bool) "same pool content" true (p1 = p2))
    a.Genie_augment.Gazettes.pools b.Genie_augment.Gazettes.pools

let test_gazettes_distinct_values () =
  List.iter
    (fun (name, arr) ->
      let n = Array.length arr in
      let distinct = List.length (List.sort_uniq compare (Array.to_list arr)) in
      Alcotest.(check int) (name ^ " all distinct") n distinct;
      Alcotest.(check bool) (name ^ " non-empty") true (n > 0))
    gz.Genie_augment.Gazettes.pools

let test_gazette_scale () =
  (* the paper ships 49 lists with 7.8M values; ours is the synthetic
     equivalent -- many lists, many values, more at larger size *)
  Alcotest.(check bool) "20+ pools" true (List.length gz.Genie_augment.Gazettes.pools >= 20);
  let small = Genie_augment.Gazettes.create ~size:100 () in
  Alcotest.(check bool) "size knob works" true
    (Genie_augment.Gazettes.total_values gz > Genie_augment.Gazettes.total_values small)

let test_gazette_for_types () =
  let open Genie_augment.Gazettes in
  Alcotest.(check (option string)) "song entity" (Some "song")
    (gazette_for ~param_name:"song" ~ty:(Ttype.Entity "tt:song"));
  Alcotest.(check (option string)) "caption is free text" (Some "free_text")
    (gazette_for ~param_name:"caption" ~ty:Ttype.String);
  Alcotest.(check (option string)) "query is topical" (Some "topic")
    (gazette_for ~param_name:"query" ~ty:Ttype.String);
  Alcotest.(check (option string)) "numbers are not replaced" None
    (gazette_for ~param_name:"volume" ~ty:Ttype.Number)

let example src sentence =
  Genie_dataset.Example.make ~id:0 ~tokens:(Genie_util.Tok.tokenize sentence)
    ~program:(parse src) ~source:Genie_dataset.Example.Synthesized ()

let test_expand_once_consistent () =
  let e =
    example "now => @com.twitter.post(status = \"hello world\");"
      "tweet \"hello world\" please"
  in
  let rng = Genie_util.Rng.create 3 in
  match Genie_augment.Expand.expand_once lib gz rng e with
  | None -> Alcotest.fail "expected an expansion"
  | Some e' ->
      (* the program changed, stays well-typed, and the new value appears in
         the rewritten sentence *)
      Alcotest.(check bool) "program changed" true
        (e'.Genie_dataset.Example.program <> e.Genie_dataset.Example.program);
      Alcotest.(check bool) "still well-typed" true
        (Typecheck.well_typed lib e'.Genie_dataset.Example.program);
      let consts = Ast.program_constants e'.Genie_dataset.Example.program in
      List.iter
        (fun (_, v) ->
          let rendering =
            Genie_util.Tok.tokenize
              (Genie_thingpedia.Prim.render_value ~quote:false v)
          in
          Alcotest.(check bool) "value present in sentence" true
            (Genie_util.Tok.match_sub e'.Genie_dataset.Example.tokens rendering <> None))
        consts

let test_expand_dataset_multipliers () =
  let para =
    { (example "now => @com.twitter.post(status = \"hello world\");"
         "tweet \"hello world\"")
      with
      Genie_dataset.Example.source = Genie_dataset.Example.Paraphrase }
  in
  let rng = Genie_util.Rng.create 4 in
  let out = Genie_augment.Expand.expand_dataset ~scale:1.0 lib gz rng [ para ] in
  (* paraphrases with string parameters expand 30x *)
  Alcotest.(check bool)
    (Printf.sprintf "expanded to %d" (List.length out))
    true
    (List.length out > 20);
  (* ids are unique *)
  let ids = List.map (fun e -> e.Genie_dataset.Example.id) out in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_expand_no_replaceable_params () =
  let e = example "now => @com.gmail.inbox() => notify;" "show me my emails" in
  let rng = Genie_util.Rng.create 5 in
  let out = Genie_augment.Expand.expand_dataset ~scale:1.0 lib gz rng [ e ] in
  Alcotest.(check int) "kept as-is" 1 (List.length out)

let test_ppdb_protects_parameters () =
  let rng = Genie_util.Rng.create 6 in
  (* "picture" is in the PPDB table; as a protected (parameter) token it must
     survive *)
  let tokens = Genie_util.Tok.tokenize "post the picture caption" in
  let out = Genie_augment.Ppdb.augment rng ~protected:[ "picture" ] tokens in
  Alcotest.(check bool) "protected token kept" true (List.mem "picture" out)

let test_ppdb_substitutes () =
  let rng = Genie_util.Rng.create 7 in
  let tokens = Genie_util.Tok.tokenize "show me my emails when it changes" in
  let changed = ref false in
  for _ = 1 to 20 do
    let out = Genie_augment.Ppdb.augment (Genie_util.Rng.split rng) ~protected:[] tokens in
    if out <> tokens then changed := true
  done;
  Alcotest.(check bool) "ppdb rewrites" true !changed

let suite =
  [ Alcotest.test_case "gazettes deterministic" `Quick test_gazettes_deterministic;
    Alcotest.test_case "gazette values distinct" `Quick test_gazettes_distinct_values;
    Alcotest.test_case "gazette scale" `Quick test_gazette_scale;
    Alcotest.test_case "gazette type mapping" `Quick test_gazette_for_types;
    Alcotest.test_case "expand_once consistency" `Quick test_expand_once_consistent;
    Alcotest.test_case "expansion multipliers" `Quick test_expand_dataset_multipliers;
    Alcotest.test_case "no replaceable params" `Quick test_expand_no_replaceable_params;
    Alcotest.test_case "ppdb protects parameters" `Quick test_ppdb_protects_parameters;
    Alcotest.test_case "ppdb substitutes" `Quick test_ppdb_substitutes ]
