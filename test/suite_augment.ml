(* Tests for gazettes, parameter replacement and PPDB augmentation
   (section 3.3). *)

open Genie_thingtalk

let lib = Genie_thingpedia.Thingpedia.core_library ()
let parse = Parser.parse_program
let gz = Genie_augment.Gazettes.create ~size:500 ()

let test_gazettes_deterministic () =
  let a = Genie_augment.Gazettes.create ~size:200 () in
  let b = Genie_augment.Gazettes.create ~size:200 () in
  List.iter2
    (fun (n1, p1) (n2, p2) ->
      Alcotest.(check string) "same pool name" n1 n2;
      Alcotest.(check bool) "same pool content" true (p1 = p2))
    a.Genie_augment.Gazettes.pools b.Genie_augment.Gazettes.pools

let test_gazettes_distinct_values () =
  List.iter
    (fun (name, arr) ->
      let n = Array.length arr in
      let distinct = List.length (List.sort_uniq compare (Array.to_list arr)) in
      Alcotest.(check int) (name ^ " all distinct") n distinct;
      Alcotest.(check bool) (name ^ " non-empty") true (n > 0))
    gz.Genie_augment.Gazettes.pools

let test_gazette_scale () =
  (* the paper ships 49 lists with 7.8M values; ours is the synthetic
     equivalent -- many lists, many values, more at larger size *)
  Alcotest.(check bool) "20+ pools" true (List.length gz.Genie_augment.Gazettes.pools >= 20);
  let small = Genie_augment.Gazettes.create ~size:100 () in
  Alcotest.(check bool) "size knob works" true
    (Genie_augment.Gazettes.total_values gz > Genie_augment.Gazettes.total_values small)

let test_gazette_for_types () =
  let open Genie_augment.Gazettes in
  Alcotest.(check (option string)) "song entity" (Some "song")
    (gazette_for ~param_name:"song" ~ty:(Ttype.Entity "tt:song"));
  Alcotest.(check (option string)) "caption is free text" (Some "free_text")
    (gazette_for ~param_name:"caption" ~ty:Ttype.String);
  Alcotest.(check (option string)) "query is topical" (Some "topic")
    (gazette_for ~param_name:"query" ~ty:Ttype.String);
  Alcotest.(check (option string)) "numbers are not replaced" None
    (gazette_for ~param_name:"volume" ~ty:Ttype.Number)

let example src sentence =
  Genie_dataset.Example.make ~id:0 ~tokens:(Genie_util.Tok.tokenize sentence)
    ~program:(parse src) ~source:Genie_dataset.Example.Synthesized ()

let test_expand_once_consistent () =
  let e =
    example "now => @com.twitter.post(status = \"hello world\");"
      "tweet \"hello world\" please"
  in
  let rng = Genie_util.Rng.create 3 in
  match Genie_augment.Expand.expand_once lib gz rng e with
  | None -> Alcotest.fail "expected an expansion"
  | Some e' ->
      (* the program changed, stays well-typed, and the new value appears in
         the rewritten sentence *)
      Alcotest.(check bool) "program changed" true
        (e'.Genie_dataset.Example.program <> e.Genie_dataset.Example.program);
      Alcotest.(check bool) "still well-typed" true
        (Typecheck.well_typed lib e'.Genie_dataset.Example.program);
      let consts = Ast.program_constants e'.Genie_dataset.Example.program in
      List.iter
        (fun (_, v) ->
          let rendering =
            Genie_util.Tok.tokenize
              (Genie_thingpedia.Prim.render_value ~quote:false v)
          in
          Alcotest.(check bool) "value present in sentence" true
            (Genie_util.Tok.match_sub e'.Genie_dataset.Example.tokens rendering <> None))
        consts

let test_expand_dataset_multipliers () =
  let para =
    { (example "now => @com.twitter.post(status = \"hello world\");"
         "tweet \"hello world\"")
      with
      Genie_dataset.Example.source = Genie_dataset.Example.Paraphrase }
  in
  let rng = Genie_util.Rng.create 4 in
  let out = Genie_augment.Expand.expand_dataset ~scale:1.0 lib gz rng [ para ] in
  (* paraphrases with string parameters expand 30x *)
  Alcotest.(check bool)
    (Printf.sprintf "expanded to %d" (List.length out))
    true
    (List.length out > 20);
  (* ids are unique *)
  let ids = List.map (fun e -> e.Genie_dataset.Example.id) out in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_expand_no_replaceable_params () =
  let e = example "now => @com.gmail.inbox() => notify;" "show me my emails" in
  let rng = Genie_util.Rng.create 5 in
  let out = Genie_augment.Expand.expand_dataset ~scale:1.0 lib gz rng [ e ] in
  Alcotest.(check int) "kept as-is" 1 (List.length out)

let test_ppdb_protects_parameters () =
  let rng = Genie_util.Rng.create 6 in
  (* "picture" is in the PPDB table; as a protected (parameter) token it must
     survive *)
  let tokens = Genie_util.Tok.tokenize "post the picture caption" in
  let out = Genie_augment.Ppdb.augment rng ~protected:[ "picture" ] tokens in
  Alcotest.(check bool) "protected token kept" true (List.mem "picture" out)

let test_ppdb_substitutes () =
  let rng = Genie_util.Rng.create 7 in
  let tokens = Genie_util.Tok.tokenize "show me my emails when it changes" in
  let changed = ref false in
  for _ = 1 to 20 do
    let out = Genie_augment.Ppdb.augment (Genie_util.Rng.split rng) ~protected:[] tokens in
    if out <> tokens then changed := true
  done;
  Alcotest.(check bool) "ppdb rewrites" true !changed

(* --- iteration-order independence regressions ------------------------------------- *)

(* Both augmentation indexes are randomized hash tables (~random:true), so
   any path that consumed raw iteration order would already be flaky within
   one process; these pin the sorted-fold contract (also exercised under
   OCAMLRUNPARAM=R in CI). *)

let test_ppdb_index_order_independent () =
  (* the same phrase table indexed from a different insertion order must
     produce identical rewrites for identical RNG streams *)
  let shuffled = Genie_augment.Ppdb.index (List.rev Genie_augment.Ppdb.table) in
  Alcotest.(check bool) "canonical entry listing" true
    (Genie_augment.Ppdb.entries shuffled
    = Genie_augment.Ppdb.entries Genie_augment.Ppdb.default);
  let tokens = Genie_util.Tok.tokenize "show me my emails when the picture changes" in
  for seed = 0 to 19 do
    let out table =
      Genie_augment.Ppdb.augment (Genie_util.Rng.create seed) ~table
        ~protected:[ "picture" ] tokens
    in
    Alcotest.(check (list string))
      (Printf.sprintf "same rewrite, seed %d" seed)
      (out Genie_augment.Ppdb.default)
      (out shuffled)
  done

let test_gazette_pools_sorted () =
  let names = List.map fst gz.Genie_augment.Gazettes.pools in
  Alcotest.(check (list string)) "pools listed in sorted order"
    (List.sort compare names) names;
  (* the listing and the lookup index agree *)
  List.iter
    (fun (name, arr) ->
      match Hashtbl.find_opt gz.Genie_augment.Gazettes.by_name name with
      | None -> Alcotest.fail (name ^ " missing from index")
      | Some arr' -> Alcotest.(check bool) (name ^ " index agrees") true (arr == arr'))
    gz.Genie_augment.Gazettes.pools

let sharded_inputs =
  lazy
    (List.mapi
       (fun i (src, sentence) ->
         { (example src sentence) with Genie_dataset.Example.id = i })
       [ ("now => @com.twitter.post(status = \"hello world\");", "tweet \"hello world\"");
         ("now => @com.gmail.inbox() => notify;", "show me my emails");
         ("now => @com.dogapi.get() => notify;", "get a dog picture");
         ( "now => @com.twitter.post(status = \"good morning\");",
           "post \"good morning\" on twitter" );
         ("now => @thermostat.get_temperature() => notify;", "what is the temperature") ])

let test_expand_sharded_worker_invariant () =
  let inputs = Lazy.force sharded_inputs in
  let run ?fault workers =
    Genie_augment.Expand.expand_dataset_sharded ~scale:1.0 ?fault ~workers lib gz
      ~seed:13 inputs
  in
  let expected = run 0 in
  Alcotest.(check bool) "expands" true (List.length expected > List.length inputs);
  List.iter
    (fun w ->
      Alcotest.(check bool)
        (Printf.sprintf "workers=%d identical" w)
        true
        (run w = expected))
    [ 1; 2; 4 ];
  let fault =
    Genie_conc.Fault.create
      { Genie_conc.Fault.default with
        Genie_conc.Fault.seed = 3;
        crash_rate = 0.5;
        crash_attempts = 2 }
  in
  List.iter
    (fun w ->
      Alcotest.(check bool)
        (Printf.sprintf "workers=%d with crashes identical" w)
        true
        (run ~fault w = expected))
    [ 0; 2 ]

let suite =
  [ Alcotest.test_case "gazettes deterministic" `Quick test_gazettes_deterministic;
    Alcotest.test_case "gazette values distinct" `Quick test_gazettes_distinct_values;
    Alcotest.test_case "gazette scale" `Quick test_gazette_scale;
    Alcotest.test_case "gazette type mapping" `Quick test_gazette_for_types;
    Alcotest.test_case "expand_once consistency" `Quick test_expand_once_consistent;
    Alcotest.test_case "expansion multipliers" `Quick test_expand_dataset_multipliers;
    Alcotest.test_case "no replaceable params" `Quick test_expand_no_replaceable_params;
    Alcotest.test_case "ppdb protects parameters" `Quick test_ppdb_protects_parameters;
    Alcotest.test_case "ppdb substitutes" `Quick test_ppdb_substitutes;
    Alcotest.test_case "ppdb index order-independent" `Quick
      test_ppdb_index_order_independent;
    Alcotest.test_case "gazette pools sorted" `Quick test_gazette_pools_sorted;
    Alcotest.test_case "sharded expansion worker-invariant" `Quick
      test_expand_sharded_worker_invariant ]
