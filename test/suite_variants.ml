(* Tests for the mechanical template-variant expander. *)

open Genie_thingpedia

let find_by_utterance u ts =
  List.find_opt (fun (t : Prim.t) -> t.Prim.utterance = u) ts

let test_np_variant () =
  let base =
    Prim.query (Genie_thingtalk.Ast.Fn.make "com.gmail" "inbox") [] "my emails"
  in
  let expanded = Variants.expand base in
  Alcotest.(check bool) "original kept" true (find_by_utterance "my emails" expanded <> None);
  Alcotest.(check bool) "quantified variant" true
    (find_by_utterance "all my emails" expanded <> None)

let test_wp_variants () =
  let base =
    Prim.monitor (Genie_thingtalk.Ast.Fn.make "com.gmail" "inbox") []
      "when i receive an email"
  in
  let expanded = Variants.expand base in
  Alcotest.(check int) "three when-word variants" 4 (List.length expanded);
  Alcotest.(check bool) "whenever variant" true
    (find_by_utterance "whenever i receive an email" expanded <> None)

let test_variants_share_semantics () =
  (* every variant builds the same fragment as its original *)
  let rng = Genie_util.Rng.create 3 in
  List.iter
    (fun (t : Prim.t) ->
      let env =
        List.map (fun (n, ty) -> (n, Genie_templates.Values.sample rng ty)) t.Prim.params
      in
      List.iter
        (fun (v : Prim.t) ->
          Alcotest.(check bool) "same semantics" true (v.Prim.build env = t.Prim.build env))
        (Variants.expand t))
    (Thingpedia.authored_core_templates ())

let test_expand_all_grows () =
  let authored = Thingpedia.authored_core_templates () in
  let expanded = Variants.expand_all authored in
  Alcotest.(check bool) "expansion grows the set" true
    (List.length expanded > List.length authored)

let suite =
  [ Alcotest.test_case "np variant" `Quick test_np_variant;
    Alcotest.test_case "wp variants" `Quick test_wp_variants;
    Alcotest.test_case "variants share semantics" `Quick test_variants_share_semantics;
    Alcotest.test_case "expand_all grows" `Quick test_expand_all_grows ]
