(* Tests for the ThingTalk language core: types, values, lexer, parser,
   printer, type checker. *)

open Genie_thingtalk

let lib = Genie_thingpedia.Thingpedia.core_library ()

let parse = Parser.parse_program

let check_roundtrip src =
  let p = parse src in
  let printed = Printer.program_to_string p in
  let p2 = parse printed in
  Alcotest.(check bool) ("roundtrip: " ^ src) true (p = p2)

(* --- types ------------------------------------------------------------------- *)

let test_units () =
  Alcotest.(check (float 1e-6)) "km to m" 5000.0 (Ttype.Units.to_base 5.0 "km");
  Alcotest.(check (float 1e-6)) "GB to bytes" 2e9 (Ttype.Units.to_base 2.0 "GB");
  Alcotest.(check (float 1e-3)) "F to C" 15.555 (Ttype.Units.to_base 60.0 "F");
  Alcotest.(check (float 1e-6)) "C identity" 20.0 (Ttype.Units.to_base 20.0 "C");
  Alcotest.(check (option string)) "base of min" (Some "ms") (Ttype.Units.base_of "min");
  Alcotest.(check (option string)) "unknown unit" None (Ttype.Units.base_of "parsec")

let test_assignability () =
  Alcotest.(check bool) "same type" true
    (Ttype.assignable ~src:Ttype.String ~dst:Ttype.String);
  Alcotest.(check bool) "string into entity" true
    (Ttype.assignable ~src:Ttype.String ~dst:(Ttype.Entity "tt:song"));
  Alcotest.(check bool) "number into string" false
    (Ttype.assignable ~src:Ttype.Number ~dst:Ttype.String);
  Alcotest.(check bool) "url into picture" true
    (Ttype.assignable ~src:Ttype.Url ~dst:Ttype.Picture);
  (* strict assignability used for synthesis is narrower *)
  Alcotest.(check bool) "strict: string into phone rejected" false
    (Ttype.strictly_assignable ~src:Ttype.String ~dst:Ttype.Phone_number);
  Alcotest.(check bool) "strict: same entity" true
    (Ttype.strictly_assignable ~src:(Ttype.Entity "tt:song") ~dst:(Ttype.Entity "tt:song"));
  Alcotest.(check bool) "strict: different entities" false
    (Ttype.strictly_assignable ~src:(Ttype.Entity "tt:song") ~dst:(Ttype.Entity "tt:artist"))

let test_value_conformance () =
  Alcotest.(check bool) "measure base match" true
    (Value.conforms (Value.Measure [ (60.0, "F") ]) (Ttype.Measure "C"));
  Alcotest.(check bool) "measure base mismatch" false
    (Value.conforms (Value.Measure [ (60.0, "F") ]) (Ttype.Measure "byte"));
  Alcotest.(check bool) "enum member" true
    (Value.conforms (Value.Enum "on") (Ttype.Enum [ "on"; "off" ]));
  Alcotest.(check bool) "enum non-member" false
    (Value.conforms (Value.Enum "maybe") (Ttype.Enum [ "on"; "off" ]));
  Alcotest.(check bool) "undefined conforms anywhere" true
    (Value.conforms Value.Undefined Ttype.Number)

let test_measure_composition () =
  (* "6 feet 3 inches" composes additively (section 2.1) *)
  let v = Value.Measure [ (6.0, "ft"); (3.0, "in") ] in
  match Value.to_float ~now:0.0 v with
  | Some meters -> Alcotest.(check (float 1e-3)) "6ft 3in in meters" 1.905 meters
  | None -> Alcotest.fail "expected a numeric value"

let test_dates () =
  let now = 10.0 in
  let day d = Value.date_to_days ~now d in
  Alcotest.(check (float 1e-9)) "now" 10.0 (day Value.D_now);
  Alcotest.(check (float 1e-9)) "start of week" 7.0 (day (Value.D_start_of "week"));
  Alcotest.(check (float 1e-9)) "end of week" 14.0 (day (Value.D_end_of "week"));
  Alcotest.(check (float 1e-6)) "now + 2 days" 12.0
    (day (Value.D_plus (Value.D_now, 2.0, "day")))

let test_runtime_equal () =
  Alcotest.(check bool) "case-insensitive strings" true
    (Value.runtime_equal ~now:0.0 (Value.String "Alice") (Value.String "alice"));
  Alcotest.(check bool) "entity vs string" true
    (Value.runtime_equal ~now:0.0
       (Value.Entity { ty = "tt:username"; value = "bob"; display = None })
       (Value.String "bob"));
  Alcotest.(check bool) "measures across units" true
    (Value.runtime_equal ~now:0.0
       (Value.Measure [ (1.0, "km") ])
       (Value.Measure [ (1000.0, "m") ]))

(* --- lexer / parser / printer ----------------------------------------------------- *)

let test_parse_fig1 () =
  let p =
    parse
      "now => @com.thecatapi.get() => @com.facebook.post_picture(picture_url = \
       picture_url, caption = \"funny cat\");"
  in
  Alcotest.(check int) "two invocations" 2 (List.length (Ast.program_invocations p));
  Alcotest.(check bool) "has param passing" true (Ast.has_param_passing p)

let test_parse_roundtrips () =
  List.iter check_roundtrip
    [ "now => @com.gmail.inbox() => notify;";
      "now => (@com.gmail.inbox()) filter sender_name == \"alice\" => notify;";
      "monitor (@com.twitter.timeline()) => @com.twitter.retweet(tweet_id = tweet_id);";
      "edge (monitor (@org.thingpedia.weather.current(location = location(\"paris\")))) on \
       temperature < 60F => notify;";
      "timer base = $now interval = 1h => notify;";
      "attimer time = time(8,30) => @com.twitter.post(status = \"good morning\");";
      "now => @com.nytimes.get_front_page() join @com.yandex.translate.translate() on \
       (text = title) => notify;";
      "monitor (@com.dropbox.list_folder()) on new [file_name] => notify;";
      "now => (@com.gmail.inbox()) filter is_important == true && sender_name == \"bob\" \
       => notify;";
      "now => (@com.gmail.inbox()) filter (sender_name == \"a\" || sender_name == \"b\") \
       => notify;";
      "now => (@com.dropbox.list_folder()) filter !(is_folder == true) => notify;";
      "now => agg sum file_size of (@com.dropbox.list_folder()) => notify;";
      "now => agg count of (@com.gmail.inbox()) => notify;";
      "now => (@com.dropbox.list_folder()) filter modified_time > start_of(week) => notify;";
      "now => @com.uber.price_estimate(start = location:home, end = location:work) => notify;";
      "now => @org.thingpedia.builtin.thingengine.builtin.get_random_between(low = 1, high = \
       10) => notify;";
      "now => (@com.twitter.timeline()) filter hashtags contains \"cats\"^^tt:hashtag => \
       notify;" ]

let test_parse_policy () =
  let pol =
    Parser.parse_policy
      "source source == \"secretary\"^^tt:contact : now => (@com.gmail.inbox()) filter \
       labels contains \"work\" => notify;"
  in
  (match pol.Ast.target with
  | Ast.Policy_query (inv, pred) ->
      Alcotest.(check string) "fn" "@com.gmail.inbox" (Ast.Fn.to_string inv.Ast.fn);
      Alcotest.(check bool) "has filter" true (pred <> Ast.P_true)
  | Ast.Policy_action _ -> Alcotest.fail "expected query policy");
  (* policy printer round trip *)
  let pol2 = Parser.parse_policy (Printer.policy_to_string pol) in
  Alcotest.(check bool) "policy roundtrip" true (pol = pol2)

let test_parse_errors () =
  let fails src =
    match parse src with
    | exception (Parser.Error _ | Lexer.Error _) -> ()
    | _ -> Alcotest.fail ("expected parse error: " ^ src)
  in
  fails "now => => notify;";
  fails "monitor => notify;";
  fails "now => @com.gmail.inbox(";
  fails "now => @com.gmail.inbox() => notify; trailing";
  fails "now => (@com.gmail.inbox()) filter sender_name == => notify;"

let test_measure_lexing () =
  let p = parse "now => (@com.dropbox.list_folder()) filter file_size > 10MB => notify;" in
  match Ast.program_predicates p with
  | [ Ast.P_atom { rhs = Value.Measure [ (10.0, "MB") ]; _ } ] -> ()
  | _ -> Alcotest.fail "expected a 10MB measure"

(* --- typecheck ---------------------------------------------------------------------- *)

let ok src =
  match Typecheck.check_program lib (parse src) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (src ^ ": " ^ e)

let bad src =
  let p = parse src in
  match Typecheck.check_program lib p with
  | Ok () -> Alcotest.fail ("expected type error: " ^ src)
  | Error _ -> ()

let test_typecheck_accepts () =
  ok "now => @com.gmail.inbox() => notify;";
  ok "monitor (@com.twitter.timeline()) => @com.twitter.retweet(tweet_id = tweet_id);";
  ok "now => @com.thecatapi.get() => @com.facebook.post_picture(picture_url = picture_url, \
      caption = \"x\");";
  ok "now => agg sum file_size of (@com.dropbox.list_folder()) => notify;";
  ok "now => @com.nytimes.get_front_page() join @com.yandex.translate.translate() on (text \
      = title) => notify;"

let test_typecheck_rejects () =
  bad "now => @com.nosuch.fn() => notify;";
  (* action used as query *)
  bad "now => @com.twitter.post(status = \"x\") => notify;";
  (* query used as action *)
  bad "now => @com.gmail.inbox() => @com.twitter.timeline();";
  (* missing required parameter *)
  bad "now => @com.twitter.post();";
  (* wrong constant type *)
  bad "now => @com.twitter.post(status = 42);";
  (* unknown parameter *)
  bad "now => @com.twitter.post(status = \"x\", nope = \"y\");";
  (* filter on unknown output *)
  bad "now => (@com.gmail.inbox()) filter nosuch == \"x\" => notify;";
  (* ordering comparison on a string column *)
  bad "now => (@com.gmail.inbox()) filter subject > 5 => notify;";
  (* unbound parameter passing *)
  bad "now => @com.gmail.inbox() => @com.twitter.retweet(tweet_id = nothere);";
  (* monitor of a non-monitorable function (thecatapi changes constantly) *)
  bad "monitor (@com.thecatapi.get()) => notify;";
  (* aggregation over a non-numeric field *)
  bad "now => agg sum file_name of (@com.dropbox.list_folder()) => notify;";
  (* count of a single-result query *)
  bad "now => agg count of (@com.dropbox.get_space_usage()) => notify;";
  (* duplicate parameter *)
  bad "now => @com.twitter.post(status = \"a\", status = \"b\");"

let test_monitorability_composition () =
  (* filters and joins of monitorable queries remain monitorable (section 2.2) *)
  ok "monitor ((@com.gmail.inbox()) filter is_important == true) => notify;";
  ok "monitor (@com.nytimes.get_front_page() join @com.bbc.get_news()) => notify;";
  (* a join with a non-monitorable operand is not monitorable *)
  bad "monitor (@com.gmail.inbox() join @com.thecatapi.get()) => notify;"

let test_out_params () =
  let q = (parse "now => @com.dropbox.list_folder() => notify;").Ast.query in
  match q with
  | Some q ->
      let outs = Typecheck.query_out_params lib q in
      Alcotest.(check bool) "has file_name" true (List.mem_assoc "file_name" outs);
      Alcotest.(check bool) "has modified_time" true (List.mem_assoc "modified_time" outs)
  | None -> Alcotest.fail "expected query"

let test_join_rightmost_wins () =
  (* on duplicate output names, the rightmost instance wins (section 2.3) *)
  let q =
    (parse
       "now => @com.nytimes.get_front_page() join @com.bbc.get_news() => notify;")
      .Ast.query
  in
  match q with
  | Some q ->
      let outs = Typecheck.query_out_params lib q in
      Alcotest.(check int) "one title" 1
        (List.length (List.filter (fun (n, _) -> n = "title") outs))
  | None -> Alcotest.fail "expected query"

let suite =
  [ Alcotest.test_case "units" `Quick test_units;
    Alcotest.test_case "assignability" `Quick test_assignability;
    Alcotest.test_case "value conformance" `Quick test_value_conformance;
    Alcotest.test_case "measure composition" `Quick test_measure_composition;
    Alcotest.test_case "dates" `Quick test_dates;
    Alcotest.test_case "runtime equality" `Quick test_runtime_equal;
    Alcotest.test_case "parse fig1" `Quick test_parse_fig1;
    Alcotest.test_case "parse/print roundtrips" `Quick test_parse_roundtrips;
    Alcotest.test_case "parse policy" `Quick test_parse_policy;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "measure lexing" `Quick test_measure_lexing;
    Alcotest.test_case "typecheck accepts" `Quick test_typecheck_accepts;
    Alcotest.test_case "typecheck rejects" `Quick test_typecheck_rejects;
    Alcotest.test_case "monitorability composition" `Quick test_monitorability_composition;
    Alcotest.test_case "query out params" `Quick test_out_params;
    Alcotest.test_case "join rightmost wins" `Quick test_join_rightmost_wins ]
