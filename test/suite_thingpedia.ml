(* Tests for the Thingpedia skill library: scale invariants matching the
   paper's snapshot, declaration well-formedness, and primitive-template
   validity (every template must build a well-typed fragment). *)

open Genie_thingtalk

let core = Genie_thingpedia.Thingpedia.core_library ()
let full = Genie_thingpedia.Thingpedia.full_library ()

let test_scale () =
  (* the paper's snapshot: 44 skills, 131 functions, 178 distinct parameters;
     our library matches that order of magnitude *)
  Alcotest.(check bool) "40+ skills" true (Schema.Library.num_classes core >= 40);
  Alcotest.(check bool) "100+ functions" true (Schema.Library.num_functions core >= 100);
  Alcotest.(check bool) "100+ distinct parameters" true
    (Schema.Library.distinct_params core >= 100);
  Alcotest.(check bool) "both queries and actions" true
    (List.length (Schema.Library.queries core) > 0
    && List.length (Schema.Library.actions core) > 0)

let test_spotify_scale () =
  (* section 6.1: 15 queries and 17 actions *)
  match Schema.Library.find_class full "com.spotify" with
  | None -> Alcotest.fail "spotify class missing"
  | Some c ->
      let fns = c.Schema.c_functions in
      Alcotest.(check int) "15 queries" 15 (List.length (List.filter Schema.is_query fns));
      Alcotest.(check int) "17 actions" 17 (List.length (List.filter Schema.is_action fns))

let test_actions_have_no_outputs () =
  List.iter
    (fun f ->
      Alcotest.(check (list string))
        (Ast.Fn.to_string (Schema.fn_ref f) ^ " outputs")
        []
        (List.map (fun p -> p.Schema.p_name) (Schema.out_params f)))
    (Schema.Library.actions full)

let test_dropbox_matches_fig4 () =
  (* Fig. 4 of the paper *)
  match Schema.Library.find_class core "com.dropbox" with
  | None -> Alcotest.fail "dropbox missing"
  | Some c ->
      let find n = List.find_opt (fun f -> f.Schema.f_name = n) c.Schema.c_functions in
      (match find "list_folder" with
      | Some f ->
          Alcotest.(check bool) "monitorable list query" true
            (Schema.is_monitorable f && Schema.is_list f);
          Alcotest.(check bool) "has modified_time out" true
            (Schema.find_param f "modified_time" <> None)
      | None -> Alcotest.fail "list_folder missing");
      (match find "open" with
      | Some f ->
          Alcotest.(check bool) "open is a non-monitorable query" true
            (Schema.is_query f && not (Schema.is_monitorable f))
      | None -> Alcotest.fail "open missing");
      match find "move" with
      | Some f -> Alcotest.(check bool) "move is an action" true (Schema.is_action f)
      | None -> Alcotest.fail "move missing"

let all_templates = Genie_thingpedia.Thingpedia.all_templates ()

let test_templates_reference_known_functions () =
  List.iter
    (fun (t : Genie_thingpedia.Prim.t) ->
      Alcotest.(check bool)
        ("known function: " ^ Ast.Fn.to_string t.Genie_thingpedia.Prim.fn)
        true
        (Schema.Library.find_fn full t.Genie_thingpedia.Prim.fn <> None))
    all_templates

let test_templates_build_well_typed () =
  (* instantiating every template with sampled values must yield a fragment
     whose wrapper program type-checks *)
  let rng = Genie_util.Rng.create 123 in
  List.iter
    (fun (t : Genie_thingpedia.Prim.t) ->
      let env =
        List.map
          (fun (name, ty) -> (name, Genie_templates.Values.sample rng ty))
          t.Genie_thingpedia.Prim.params
      in
      match t.Genie_thingpedia.Prim.build env with
      | None -> Alcotest.fail ("template failed to build: " ^ t.Genie_thingpedia.Prim.utterance)
      | Some frag ->
          let program =
            match frag with
            | Ast.F_query q -> Some { Ast.stream = Ast.S_now; query = Some q; action = Ast.A_notify }
            | Ast.F_action a -> Some { Ast.stream = Ast.S_now; query = None; action = a }
            | Ast.F_stream s -> Some { Ast.stream = s; query = None; action = Ast.A_notify }
            | _ -> None
          in
          (match program with
          | None -> Alcotest.fail "unexpected fragment kind"
          | Some p -> (
              match Typecheck.check_program full p with
              | Ok () -> ()
              | Error e ->
                  Alcotest.fail
                    (Printf.sprintf "%s: %s" t.Genie_thingpedia.Prim.utterance e))))
    all_templates

let test_template_placeholders_declared () =
  (* every $placeholder in the utterance must be a declared parameter *)
  List.iter
    (fun (t : Genie_thingpedia.Prim.t) ->
      List.iter
        (fun ph ->
          Alcotest.(check bool)
            (Printf.sprintf "placeholder %s declared in %S" ph t.Genie_thingpedia.Prim.utterance)
            true
            (List.mem_assoc ph t.Genie_thingpedia.Prim.params))
        (Genie_thingpedia.Prim.placeholder_names t.Genie_thingpedia.Prim.utterance))
    all_templates

let test_every_function_has_template () =
  (* most functions should have at least one primitive template; require
     90% coverage of the core library *)
  let covered = Hashtbl.create 128 in
  List.iter
    (fun (t : Genie_thingpedia.Prim.t) ->
      Hashtbl.replace covered (Ast.Fn.to_string t.Genie_thingpedia.Prim.fn) ())
    all_templates;
  let fns = Schema.Library.functions full in
  let n_covered =
    List.length
      (List.filter (fun f -> Hashtbl.mem covered (Ast.Fn.to_string (Schema.fn_ref f))) fns)
  in
  Alcotest.(check bool)
    (Printf.sprintf "coverage %d/%d" n_covered (List.length fns))
    true
    (10 * n_covered >= 9 * List.length fns)

let test_render_value () =
  let open Genie_thingpedia.Prim in
  Alcotest.(check string) "quoted string" "\"hi\"" (render_value (Value.String "hi"));
  Alcotest.(check string) "unquoted" "hi" (render_value ~quote:false (Value.String "hi"));
  Alcotest.(check string) "username" "@bob"
    (render_value (Value.Entity { ty = "tt:username"; value = "bob"; display = None }));
  Alcotest.(check string) "hashtag" "#cats"
    (render_value (Value.Entity { ty = "tt:hashtag"; value = "cats"; display = None }));
  Alcotest.(check string) "measure" "60 F" (render_value (Value.Measure [ (60.0, "F") ]));
  Alcotest.(check string) "enum spaces" "modified time decreasing"
    (render_value (Value.Enum "modified_time_decreasing"))

let test_duplicate_function_rejected () =
  let c = Schema.cls "x.dup" [ Schema.query "f" []; Schema.action "g" [] ] in
  match Schema.Library.of_classes [ c; c ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected duplicate class rejection"

let test_action_with_out_param_rejected () =
  match Schema.action "bad" [ Schema.out "x" Ttype.String ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of action output parameter"

let suite =
  [ Alcotest.test_case "library scale" `Quick test_scale;
    Alcotest.test_case "spotify 15 queries / 17 actions" `Quick test_spotify_scale;
    Alcotest.test_case "actions have no outputs" `Quick test_actions_have_no_outputs;
    Alcotest.test_case "dropbox matches Fig. 4" `Quick test_dropbox_matches_fig4;
    Alcotest.test_case "templates reference known functions" `Quick
      test_templates_reference_known_functions;
    Alcotest.test_case "templates build well-typed fragments" `Quick
      test_templates_build_well_typed;
    Alcotest.test_case "template placeholders declared" `Quick
      test_template_placeholders_declared;
    Alcotest.test_case "template coverage of functions" `Quick
      test_every_function_has_template;
    Alcotest.test_case "value rendering" `Quick test_render_value;
    Alcotest.test_case "duplicate class rejected" `Quick test_duplicate_function_rejected;
    Alcotest.test_case "action out-param rejected" `Quick
      test_action_with_out_param_rejected ]
