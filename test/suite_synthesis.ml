(* Tests for the synthesis-by-sampling engine (section 3.1): well-typedness,
   determinism, deduplication, depth budgeting, and template-subset flags. *)

open Genie_thingtalk

let lib = Genie_thingpedia.Thingpedia.core_library ()
let prims = Genie_thingpedia.Thingpedia.core_templates ()
let rules = Genie_templates.Rules_thingtalk.rules lib

let synthesize ?(seed = 51) ?(target = 80) ?(depth = 4) ?(purpose = `Training) () =
  let g =
    Genie_templates.Grammar.create lib ~prims ~rules ~rng:(Genie_util.Rng.create seed) ()
  in
  Genie_synthesis.Engine.synthesize g
    { Genie_synthesis.Engine.max_depth = depth; target_per_rule = target; seed; purpose }

let data = lazy (synthesize ())

let test_nonempty () =
  Alcotest.(check bool) "produces data" true (List.length (Lazy.force data) > 500)

let test_all_well_typed () =
  List.iter
    (fun (toks, p) ->
      match Typecheck.check_program lib p with
      | Ok () -> ()
      | Error e ->
          Alcotest.fail (Printf.sprintf "%s: %s" (String.concat " " toks) e))
    (Lazy.force data)

let test_deterministic () =
  let a = synthesize ~seed:7 ~target:40 () in
  let b = synthesize ~seed:7 ~target:40 () in
  Alcotest.(check int) "same size" (List.length a) (List.length b);
  Alcotest.(check bool) "same content" true (a = b)

let test_seed_changes_output () =
  let a = synthesize ~seed:7 ~target:40 () in
  let b = synthesize ~seed:8 ~target:40 () in
  Alcotest.(check bool) "different seeds differ" true (a <> b)

let test_no_duplicate_pairs () =
  let keys =
    List.map
      (fun (toks, p) -> String.concat " " toks ^ "|" ^ Printer.program_to_string p)
      (Lazy.force data)
  in
  Alcotest.(check int) "no duplicates" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_depth_increases_coverage () =
  let d1 = synthesize ~depth:1 ~target:100 () in
  let d4 = synthesize ~depth:4 ~target:100 () in
  let distinct ps = Genie_dataset.Stats.distinct_programs lib (List.map snd ps) in
  Alcotest.(check bool) "deeper synthesis reaches more programs" true
    (distinct d4 > distinct d1);
  (* compound commands require depth > 1 *)
  Alcotest.(check bool) "depth 1 has no compounds via when-do" true
    (List.for_all (fun (_, p) -> Ast.is_primitive p) d1
    || List.exists (fun (_, p) -> not (Ast.is_primitive p)) d4)

let test_compound_commands_present () =
  let compounds = List.filter (fun (_, p) -> not (Ast.is_primitive p)) (Lazy.force data) in
  Alcotest.(check bool) "compounds synthesized" true (List.length compounds > 50)

let test_filters_and_passing_present () =
  let d = Lazy.force data in
  Alcotest.(check bool) "filters synthesized" true
    (List.exists (fun (_, p) -> Ast.program_predicates p <> []) d);
  Alcotest.(check bool) "parameter passing synthesized" true
    (List.exists (fun (_, p) -> Ast.has_param_passing p) d)

let test_sentences_nonempty_and_aligned () =
  List.iter
    (fun (toks, _) ->
      Alcotest.(check bool) "sentence has words" true (List.length toks >= 1))
    (Lazy.force data)

let test_training_only_flag () =
  (* the bare-np rule is marked Training_only; paraphrase-purpose synthesis
     must not use it, so it yields no bare-noun-phrase command duplicates *)
  let train = synthesize ~purpose:`Training ~target:60 () in
  let para = synthesize ~purpose:`Paraphrase ~target:60 () in
  Alcotest.(check bool) "both produce data" true (train <> [] && para <> []);
  let sentences d = List.map (fun (t, _) -> String.concat " " t) d in
  (* a sentence produced only by the training-only rule: starts with a bare
     noun phrase like "my emails" (no verb) -- check that the training set has
     strictly more sentence variety *)
  Alcotest.(check bool) "training set at least as varied" true
    (List.length (List.sort_uniq compare (sentences train))
    >= List.length (List.sort_uniq compare (sentences para)))

let test_policy_synthesis_separate_start () =
  let tacl_lib =
    Schema.Library.of_classes
      (Genie_thingpedia.Thingpedia.core_classes
      @ [ Genie_templates.Rules_tacl.policy_class ])
  in
  let g =
    Genie_templates.Grammar.create tacl_lib ~prims
      ~rules:(Genie_templates.Rules_tacl.rules tacl_lib)
      ~rng:(Genie_util.Rng.create 61) ~start:"policy"
      ~extra_terminals:
        [ ("person",
           Genie_templates.Rules_tacl.person_terminals (Genie_util.Rng.create 61) ~samples:1) ]
      ()
  in
  let cfg =
    { Genie_synthesis.Engine.default_config with target_per_rule = 20; max_depth = 2 }
  in
  Alcotest.(check (list string)) "programs empty for policy grammar" []
    (List.map (fun (t, _) -> String.concat " " t) (Genie_synthesis.Engine.synthesize g cfg));
  Alcotest.(check bool) "policies produced" true
    (Genie_synthesis.Engine.synthesize_policies g cfg <> [])

let suite =
  [ Alcotest.test_case "produces data" `Quick test_nonempty;
    Alcotest.test_case "all outputs well-typed" `Quick test_all_well_typed;
    Alcotest.test_case "deterministic under seed" `Quick test_deterministic;
    Alcotest.test_case "seed changes output" `Quick test_seed_changes_output;
    Alcotest.test_case "no duplicate pairs" `Quick test_no_duplicate_pairs;
    Alcotest.test_case "depth increases coverage" `Quick test_depth_increases_coverage;
    Alcotest.test_case "compound commands present" `Quick test_compound_commands_present;
    Alcotest.test_case "filters and passing present" `Quick test_filters_and_passing_present;
    Alcotest.test_case "sentences non-empty" `Quick test_sentences_nonempty_and_aligned;
    Alcotest.test_case "template-subset flags" `Quick test_training_only_flag;
    Alcotest.test_case "policy grammar start symbol" `Quick
      test_policy_synthesis_separate_start ]
