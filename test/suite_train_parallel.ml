(* Tests for the batched, deterministically data-parallel training
   substrate: QCheck finite-difference gradient checks over every Autodiff
   op and each Layers block; bitwise equality of the batched forward with
   the per-example loop; RNG-stream decoupling (interleaved prediction
   cannot perturb training); weight-digest invariance across worker counts;
   the fixed-shape reduction tree; and a golden digest pinning a small
   training run end to end.

   Regolding (after an intentional model or kernel change): run with
   TRAIN_REGOLD=1 to print the new line for test/golden/train.digest. *)

open Genie_nn

(* --- finite-difference harness ---------------------------------------------------- *)

(* Central differences over every element of every input tensor. [build]
   must construct a 1x1 loss from leaves bound to [inputs] -- rebuilding on
   a fresh tape after each perturbation, so it must be deterministic (any
   internal Rng recreated from a fixed seed). *)
let fd_check ?(eps = 1e-5) ?(tol = 1e-4) name inputs build =
  let eval () =
    let tape = Autodiff.new_tape () in
    let leaves = List.map (Autodiff.leaf tape) inputs in
    (tape, leaves, build tape leaves)
  in
  let tape, leaves, loss = eval () in
  Autodiff.backward tape loss;
  let flat (t : Tensor.t) i = t.Tensor.data.(t.Tensor.off + i) in
  let set_flat (t : Tensor.t) i x = t.Tensor.data.(t.Tensor.off + i) <- x in
  let loss_value () =
    let _, _, l = eval () in
    Tensor.get l.Autodiff.value 0 0
  in
  List.iteri
    (fun which (t : Tensor.t) ->
      let grad = (List.nth leaves which).Autodiff.grad in
      for i = 0 to Tensor.size t - 1 do
        let orig = flat t i in
        set_flat t i (orig +. eps);
        let lp = loss_value () in
        set_flat t i (orig -. eps);
        let lm = loss_value () in
        set_flat t i orig;
        let numeric = (lp -. lm) /. (2.0 *. eps) in
        let analytic = flat grad i in
        let err = Float.abs (analytic -. numeric) in
        if err /. Float.max 1.0 (Float.abs numeric) > tol then
          Alcotest.fail
            (Printf.sprintf "%s: input %d elt %d: analytic %.8f vs numeric %.8f"
               name which i analytic numeric)
      done)
    inputs

(* Each op is checked under a tanh nonlinearity so that even linear ops get
   non-constant downstream gradients. *)
let reduce tape n = Autodiff.sum_all tape (Autodiff.tanh_ tape n)

let qtest ?(count = 12) name prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count
       QCheck.(int_range 1 10_000)
       (fun seed ->
         let rng = Genie_util.Rng.create seed in
         prop rng;
         true))

let init rng r c = Tensor.init_uniform rng r c

let fd_ops_tests =
  [ qtest "fd: add (equal rows)" (fun rng ->
        fd_check "add" [ init rng 3 4; init rng 3 4 ] (fun tape -> function
          | [ a; b ] -> reduce tape (Autodiff.add tape a b)
          | _ -> assert false));
    qtest "fd: add (bias broadcast)" (fun rng ->
        fd_check "add-bias" [ init rng 3 4; init rng 1 4 ] (fun tape -> function
          | [ a; b ] -> reduce tape (Autodiff.add tape a b)
          | _ -> assert false));
    qtest "fd: add (broadcast left)" (fun rng ->
        fd_check "add-bias-left" [ init rng 1 4; init rng 3 4 ]
          (fun tape -> function
          | [ a; b ] -> reduce tape (Autodiff.add tape a b)
          | _ -> assert false));
    qtest "fd: sub" (fun rng ->
        fd_check "sub" [ init rng 3 4; init rng 3 4 ] (fun tape -> function
          | [ a; b ] -> reduce tape (Autodiff.sub tape a b)
          | _ -> assert false));
    qtest "fd: mul" (fun rng ->
        fd_check "mul" [ init rng 3 4; init rng 3 4 ] (fun tape -> function
          | [ a; b ] -> reduce tape (Autodiff.mul tape a b)
          | _ -> assert false));
    qtest "fd: scale" (fun rng ->
        let k = Genie_util.Rng.float rng 3.0 -. 1.5 in
        fd_check "scale" [ init rng 3 4 ] (fun tape -> function
          | [ a ] -> reduce tape (Autodiff.scale tape k a)
          | _ -> assert false));
    qtest "fd: matmul" (fun rng ->
        fd_check "matmul" [ init rng 3 4; init rng 4 2 ] (fun tape -> function
          | [ a; b ] -> reduce tape (Autodiff.matmul tape a b)
          | _ -> assert false));
    qtest "fd: vec_mat" (fun rng ->
        fd_check "vec_mat" [ init rng 1 3; init rng 3 4 ] (fun tape -> function
          | [ v; m ] -> reduce tape (Autodiff.vec_mat tape v m)
          | _ -> assert false));
    qtest "fd: sigmoid" (fun rng ->
        fd_check "sigmoid" [ init rng 3 4 ] (fun tape -> function
          | [ a ] -> reduce tape (Autodiff.sigmoid tape a)
          | _ -> assert false));
    qtest "fd: tanh" (fun rng ->
        fd_check "tanh" [ init rng 3 4 ] (fun tape -> function
          | [ a ] -> reduce tape (Autodiff.tanh_ tape a)
          | _ -> assert false));
    qtest "fd: concat" (fun rng ->
        fd_check "concat" [ init rng 3 2; init rng 3 3 ] (fun tape -> function
          | [ a; b ] -> reduce tape (Autodiff.concat tape a b)
          | _ -> assert false));
    qtest "fd: row" (fun rng ->
        let i = Genie_util.Rng.int rng 4 in
        fd_check "row" [ init rng 4 3 ] (fun tape -> function
          | [ a ] -> reduce tape (Autodiff.row tape a i)
          | _ -> assert false));
    qtest "fd: rows gather (with repeats)" (fun rng ->
        let ids = Array.init 4 (fun _ -> Genie_util.Rng.int rng 5) in
        ids.(3) <- ids.(0);
        fd_check "rows" [ init rng 5 3 ] (fun tape -> function
          | [ a ] -> reduce tape (Autodiff.rows tape a ids)
          | _ -> assert false));
    qtest "fd: dot" (fun rng ->
        fd_check "dot" [ init rng 3 4; init rng 3 4 ] (fun tape -> function
          | [ a; b ] -> reduce tape (Autodiff.dot tape a b)
          | _ -> assert false));
    qtest "fd: row_dot" (fun rng ->
        fd_check "row_dot" [ init rng 3 4; init rng 3 4 ] (fun tape -> function
          | [ a; b ] -> reduce tape (Autodiff.row_dot tape a b)
          | _ -> assert false));
    qtest "fd: col" (fun rng ->
        let j = Genie_util.Rng.int rng 4 in
        fd_check "col" [ init rng 3 4 ] (fun tape -> function
          | [ a ] -> reduce tape (Autodiff.col tape a j)
          | _ -> assert false));
    qtest "fd: row_scale" (fun rng ->
        fd_check "row_scale" [ init rng 3 1; init rng 3 4 ] (fun tape -> function
          | [ s; x ] -> reduce tape (Autodiff.row_scale tape s x)
          | _ -> assert false));
    qtest "fd: pack_cols + softmax (masked)" (fun rng ->
        let lengths = [| 2; 3 |] in
        fd_check "pack_cols"
          [ init rng 2 1; init rng 2 1; init rng 2 1 ]
          (fun tape steps ->
            let packed = Autodiff.pack_cols tape ~rows:2 ~lengths steps in
            reduce tape (Autodiff.softmax tape packed)));
    qtest "fd: attention_scores (masked)" (fun rng ->
        let lengths = [| 2; 3 |] in
        fd_check "attention_scores"
          [ init rng 2 4; init rng 2 4; init rng 2 4; init rng 2 4 ]
          (fun tape -> function
          | [ s0; s1; s2; q ] ->
              let packed =
                Autodiff.attention_scores tape ~lengths [| s0; s1; s2 |] q
              in
              reduce tape (Autodiff.softmax tape packed)
          | _ -> assert false));
    qtest "fd: attention_context" (fun rng ->
        let lengths = [| 2; 3 |] in
        fd_check "attention_context"
          [ init rng 2 4; init rng 2 4; init rng 2 4; init rng 2 4 ]
          (fun tape -> function
          | [ s0; s1; s2; q ] ->
              let states = [| s0; s1; s2 |] in
              let w =
                Autodiff.softmax tape
                  (Autodiff.attention_scores tape ~lengths states q)
              in
              reduce tape (Autodiff.attention_context tape w states)
          | _ -> assert false));
    qtest "fd: rows_prefix" (fun rng ->
        fd_check "rows_prefix" [ init rng 4 3 ] (fun tape -> function
          | [ a ] -> reduce tape (Autodiff.rows_prefix tape a 2)
          | _ -> assert false));
    qtest "fd: overlay_rows" (fun rng ->
        fd_check "overlay_rows" [ init rng 2 3; init rng 4 3 ]
          (fun tape -> function
          | [ top; base ] -> reduce tape (Autodiff.overlay_rows tape ~top ~base)
          | _ -> assert false));
    qtest "fd: add_rows_prefix" (fun rng ->
        fd_check "add_rows_prefix" [ init rng 4 3; init rng 2 3 ]
          (fun tape -> function
          | [ acc; top ] -> reduce tape (Autodiff.add_rows_prefix tape acc top)
          | _ -> assert false));
    qtest "fd: masked_select" (fun rng ->
        let mask = Array.init 3 (fun _ -> Genie_util.Rng.flip rng 0.5) in
        fd_check "masked_select" [ init rng 3 4; init rng 3 4 ]
          (fun tape -> function
          | [ a; b ] -> reduce tape (Autodiff.masked_select tape mask a b)
          | _ -> assert false));
    qtest "fd: dropout (fixed stream)" (fun rng ->
        fd_check "dropout" [ init rng 3 4 ] (fun tape -> function
          | [ a ] ->
              reduce tape
                (Autodiff.dropout tape
                   (Genie_util.Rng.create 42)
                   ~p:0.3 ~training:true a)
          | _ -> assert false));
    qtest "fd: dropout_rows (per-row streams)" (fun rng ->
        let active = [| true; true; false |] in
        fd_check "dropout_rows" [ init rng 3 4 ] (fun tape -> function
          | [ a ] ->
              let rngs =
                Array.init 3 (fun r -> Genie_util.Rng.create (100 + r))
              in
              reduce tape
                (Autodiff.dropout_rows tape rngs ~active ~p:0.3 ~training:true a)
          | _ -> assert false));
    qtest "fd: softmax" (fun rng ->
        fd_check "softmax" [ init rng 3 4 ] (fun tape -> function
          | [ a ] -> reduce tape (Autodiff.softmax tape a)
          | _ -> assert false));
    qtest "fd: softmax_nll" (fun rng ->
        let target = Genie_util.Rng.int rng 5 in
        fd_check "softmax_nll" [ init rng 1 5 ] (fun tape -> function
          | [ logits ] -> fst (Autodiff.softmax_nll tape logits ~target)
          | _ -> assert false));
    qtest "fd: pointer_nll" (fun rng ->
        let target = Genie_util.Rng.int rng 5 in
        fd_check "pointer_nll" [ init rng 1 1; init rng 1 5; init rng 1 4 ]
          (fun tape -> function
          | [ g; v; a ] ->
              Autodiff.pointer_nll tape
                ~gate:(Autodiff.sigmoid tape g)
                ~vocab_probs:(Autodiff.softmax tape v)
                ~attention:(Autodiff.softmax tape a)
                ~target ~copy_positions:[ 0; 2 ]
          | _ -> assert false));
    qtest "fd: pointer_nll_rows (padded rows inactive)" (fun rng ->
        let targets = Array.init 3 (fun _ -> Genie_util.Rng.int rng 5) in
        targets.(1) <- -1 (* copy-only row *);
        let copy_positions = [| [ 0 ]; [ 1; 3 ]; [] |] in
        let active = [| true; true; false |] in
        fd_check "pointer_nll_rows"
          [ init rng 3 1; init rng 3 5; init rng 3 4 ]
          (fun tape -> function
          | [ g; v; a ] ->
              Autodiff.sum_all tape
                (Autodiff.pointer_nll_rows tape
                   ~gate:(Autodiff.sigmoid tape g)
                   ~vocab_probs:(Autodiff.softmax tape v)
                   ~attention:(Autodiff.softmax tape a)
                   ~targets ~copy_positions ~active)
          | _ -> assert false));
    qtest "fd: sum_scalars" (fun rng ->
        fd_check "sum_scalars" [ init rng 1 1; init rng 1 1; init rng 1 1 ]
          (fun tape leaves ->
            Autodiff.sum_scalars tape
              (List.map (fun l -> Autodiff.tanh_ tape l) leaves)));
    qtest "fd: sum_all" (fun rng ->
        fd_check "sum_all" [ init rng 3 4 ] (fun tape -> function
          | [ a ] -> Autodiff.sum_all tape (Autodiff.mul tape a a)
          | _ -> assert false)) ]

(* --- Layers blocks, batched (rows > 1), gradients wrt parameters ------------------- *)

(* FD over every parameter of a block driven by a batched input. *)
let fd_params_check ?(eps = 1e-5) ?(tol = 1e-4) name params build =
  Optimizer.zero_grads params;
  let tape = Autodiff.new_tape () in
  Autodiff.backward tape (build tape);
  let loss_value () =
    Tensor.get (build (Autodiff.new_tape ())).Autodiff.value 0 0
  in
  List.iter
    (fun (p : Layers.param) ->
      for i = 0 to Tensor.size p.Layers.tensor - 1 do
        let orig = p.Layers.tensor.Tensor.data.(i) in
        p.Layers.tensor.Tensor.data.(i) <- orig +. eps;
        let lp = loss_value () in
        p.Layers.tensor.Tensor.data.(i) <- orig -. eps;
        let lm = loss_value () in
        p.Layers.tensor.Tensor.data.(i) <- orig;
        let numeric = (lp -. lm) /. (2.0 *. eps) in
        let analytic = p.Layers.grad.Tensor.data.(i) in
        let err = Float.abs (analytic -. numeric) in
        if err /. Float.max 1.0 (Float.abs numeric) > tol then
          Alcotest.fail
            (Printf.sprintf "%s: %s[%d]: analytic %.8f vs numeric %.8f" name
               p.Layers.name i analytic numeric)
      done)
    params

let fd_layers_tests =
  [ qtest ~count:6 "fd: linear block (batched)" (fun rng ->
        let lin = Layers.mk_linear rng "lin" ~input:4 ~output:3 in
        let x = init rng 3 4 in
        fd_params_check "linear" (Layers.linear_params lin) (fun tape ->
            reduce tape (Layers.apply_linear tape lin (Autodiff.const tape x))));
    qtest ~count:6 "fd: embedding block (batched gather)" (fun rng ->
        let emb = Layers.mk_embedding rng "emb" ~vocab:5 ~dim:3 in
        let ids = [| 1; 3; 1 |] in
        fd_params_check "embedding" (Layers.embedding_params emb) (fun tape ->
            reduce tape (Layers.lookup_rows tape emb ids)));
    qtest ~count:4 "fd: lstm block (batched steps)" (fun rng ->
        let lstm = Layers.mk_lstm rng "lstm" ~input:3 ~hidden:4 in
        let x1 = init rng 2 3 and x2 = init rng 2 3 in
        fd_params_check ~tol:1e-3 "lstm" (Layers.lstm_params lstm) (fun tape ->
            let st = Layers.lstm_init ~rows:2 tape lstm in
            let st = Layers.lstm_step tape lstm st (Autodiff.const tape x1) in
            let st = Layers.lstm_step tape lstm st (Autodiff.const tape x2) in
            reduce tape st.Layers.h));
    qtest ~count:4 "fd: attention block (batched, masked)" (fun rng ->
        let proj = Layers.mk_linear rng "p" ~input:4 ~output:2 in
        let states = List.init 3 (fun _ -> init rng 2 4) in
        let query = init rng 2 4 in
        let lengths = [| 2; 3 |] in
        fd_params_check "attention" (Layers.linear_params proj) (fun tape ->
            let snodes = List.map (Autodiff.const tape) states in
            let _, ctx =
              Layers.attention ~lengths tape snodes (Autodiff.const tape query)
            in
            reduce tape (Layers.apply_linear tape proj ctx))) ]

(* --- batched forward = per-example loop, bit for bit -------------------------------- *)

let toy_pairs =
  [ ([ "a"; "b" ], [ "x"; "y" ]);
    ([ "b"; "a" ], [ "y"; "x" ]);
    ([ "c"; "b"; "a" ], [ "z"; "x" ]);
    ([ "a" ], [ "x" ]);
    ([ "c" ], [ "z" ]);
    ([ "b"; "c"; "a" ], [ "y"; "z"; "x" ]) ]

let toy_model ?(dropout = 0.1) ?(seed = 11) () =
  let src_vocab = Vocab.of_tokens (List.concat_map fst toy_pairs) in
  let tgt_vocab = Vocab.of_tokens (List.concat_map snd toy_pairs) in
  Seq2seq.create
    ~cfg:{ Seq2seq.embed_dim = 6; hidden_dim = 8; dropout; seed }
    ~src_vocab ~tgt_vocab ()

let test_batch_loss_matches_loop () =
  let m = toy_model () in
  let exs = Array.of_list toy_pairs in
  let k = Array.length exs in
  let tape = Autodiff.new_tape () in
  let _, per_row =
    Seq2seq.batch_loss tape m ~training:true ~epoch:0
      ~example_ids:(Array.init k (fun i -> i))
      exs
  in
  let bits x = Int64.bits_of_float x in
  for i = 0 to k - 1 do
    let l =
      Seq2seq.example_loss ~epoch:0 ~example_id:i
        (Autodiff.new_tape ())
        m ~training:true (fst exs.(i)) (snd exs.(i))
    in
    Alcotest.(check int64)
      (Printf.sprintf "row %d loss bits" i)
      (bits (Tensor.get l.Autodiff.value 0 0))
      (bits (Tensor.get per_row.Autodiff.value i 0))
  done

(* --- weight-digest invariance: batch composition and worker count ------------------- *)

let trained_digest ?progress ~batch ~micro ~workers () =
  let m = toy_model () in
  Seq2seq.train ~epochs:3 ~lr:5e-3 ~batch ~micro ~workers ?progress m toy_pairs;
  Seq2seq.weight_digest m

let test_digest_invariant_across_workers () =
  let d0 = trained_digest ~batch:4 ~micro:2 ~workers:0 () in
  List.iter
    (fun w ->
      Alcotest.(check string)
        (Printf.sprintf "workers=%d digest" w)
        d0
        (trained_digest ~batch:4 ~micro:2 ~workers:w ()))
    [ 1; 2; 4 ]

let test_batch1_replays_per_example_loop () =
  (* batch=1/micro=1 must be invariant to the worker knob too: each shard is
     a single example and the reduction tree is a leaf *)
  let d = trained_digest ~batch:1 ~micro:1 ~workers:0 () in
  Alcotest.(check string) "workers don't perturb batch=1" d
    (trained_digest ~batch:1 ~micro:1 ~workers:4 ())

(* --- RNG-stream decoupling: interleaved prediction cannot perturb training ---------- *)

let test_interleaved_predict_does_not_perturb_training () =
  let plain = trained_digest ~batch:4 ~micro:2 ~workers:0 () in
  let interleaved =
    trained_digest ~batch:4 ~micro:2 ~workers:0
      ~progress:(fun _ ->
        (* a decode between every epoch: draws from no training stream *)
        List.iter (fun (src, _) -> ignore (Seq2seq.decode ~max_len:4 (toy_model ()) src)) toy_pairs)
      ()
  in
  Alcotest.(check string) "decode between epochs leaves weights unchanged" plain
    interleaved

let test_interleaved_predict_same_model () =
  (* stronger: decoding with the model being trained, mid-training *)
  let m1 = toy_model () in
  Seq2seq.train ~epochs:3 ~lr:5e-3 ~batch:4 ~micro:2 m1 toy_pairs;
  let m2 = toy_model () in
  Seq2seq.train ~epochs:3 ~lr:5e-3 ~batch:4 ~micro:2
    ~progress:(fun _ -> ignore (Seq2seq.decode ~max_len:4 m2 [ "a"; "b" ]))
    m2 toy_pairs;
  Alcotest.(check string) "decoding the live model is side-effect free"
    (Seq2seq.weight_digest m1) (Seq2seq.weight_digest m2)

(* --- reduction tree shape ----------------------------------------------------------- *)

let test_tree_fold_shape () =
  let combine a b = "(" ^ a ^ "." ^ b ^ ")" in
  Alcotest.(check (option string))
    "empty" None
    (Genie_conc.Pool.tree_fold ~combine []);
  Alcotest.(check (option string))
    "singleton" (Some "a")
    (Genie_conc.Pool.tree_fold ~combine [ "a" ]);
  (* balanced pairing, left to right, odd tail promoted unchanged *)
  Alcotest.(check (option string))
    "five leaves"
    (Some "(((a.b).(c.d)).e)")
    (Genie_conc.Pool.tree_fold ~combine [ "a"; "b"; "c"; "d"; "e" ]);
  Alcotest.(check (option string))
    "four leaves"
    (Some "((a.b).(c.d))")
    (Genie_conc.Pool.tree_fold ~combine [ "a"; "b"; "c"; "d" ])

(* --- golden digest of a pinned training run ----------------------------------------- *)

let read_golden () =
  let name = "golden/train.digest" in
  let path = if Sys.file_exists name then name else Filename.concat "test" name in
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  line

(* Replays the CI leg's pinned CLI run in-process:
     genie train --target 4 --depth 2 --pairs 24 --epochs 2 --digest-dir ...
   (corpus construction mirrors bin/genie_cli.ml line for line). The line
   format is the CLI's, so the golden file regolds either way -- via
   TRAIN_REGOLD=1 here or `genie train ... --digest-dir test/golden`. *)
let test_golden_train_digest () =
  let seed = 5 in
  let lib = Genie_thingpedia.Thingpedia.core_library () in
  let g =
    Genie_templates.Grammar.create lib
      ~prims:(Genie_thingpedia.Thingpedia.core_templates ())
      ~rules:(Genie_templates.Rules_thingtalk.rules lib)
      ~rng:(Genie_util.Rng.create seed) ()
  in
  let data =
    Genie_synthesis.Engine.synthesize g
      { Genie_synthesis.Engine.default_config with
        seed;
        target_per_rule = 4;
        max_depth = 2 }
  in
  let train_pairs =
    List.filteri (fun i _ -> i < 24)
      (List.map
         (fun (toks, p) ->
           let toks = List.filter (fun t -> t <> "\"") toks in
           ( toks,
             Genie_thingtalk.Nn_syntax.to_tokens lib
               (Genie_thingtalk.Canonical.normalize lib p) ))
         data)
  in
  let src_vocab = Vocab.of_tokens (List.concat_map fst train_pairs) in
  let tgt_vocab = Vocab.of_tokens (List.concat_map snd train_pairs) in
  let m =
    Seq2seq.create
      ~cfg:{ Seq2seq.default_config with Seq2seq.seed }
      ~src_vocab ~tgt_vocab ()
  in
  Seq2seq.train ~epochs:2 ~lr:5e-3 ~batch:4 ~micro:2 ~workers:2 m train_pairs;
  let line =
    Printf.sprintf "seed=%d epochs=2 batch=4 micro=2 pairs=%d digest=%s" seed
      (List.length train_pairs) (Seq2seq.weight_digest m)
  in
  if Sys.getenv_opt "TRAIN_REGOLD" <> None then
    Printf.printf "test/golden/train.digest: %s\n%!" line;
  Alcotest.(check string) "golden training digest" (read_golden ()) line

let suite =
  fd_ops_tests @ fd_layers_tests
  @ [ Alcotest.test_case "batched loss = per-example loop (bitwise)" `Quick
        test_batch_loss_matches_loop;
      Alcotest.test_case "weight digest invariant across workers" `Quick
        test_digest_invariant_across_workers;
      Alcotest.test_case "batch=1 ignores the worker knob" `Quick
        test_batch1_replays_per_example_loop;
      Alcotest.test_case "interleaved predict leaves training unperturbed" `Quick
        test_interleaved_predict_does_not_perturb_training;
      Alcotest.test_case "decoding the live model is side-effect free" `Quick
        test_interleaved_predict_same_model;
      Alcotest.test_case "tree_fold reduction shape" `Quick test_tree_fold_shape;
      Alcotest.test_case "golden training digest" `Quick test_golden_train_digest ]
