(* Differential, property and golden tests for the streaming disk-backed
   corpus pipeline and the sharded evaluator.

   The pipeline's contract is that the spilled-and-merged corpus is
   byte-for-byte the in-memory corpus: same records, same order, same
   digest — at every worker count, every spill threshold (tiny, mid,
   unbounded) and under seeded shard-crash schedules. The on-disk codec
   follows the network codec's exact-consumption discipline: truncation at
   any byte boundary and any flipped byte are rejected. The sharded
   evaluator's contract is that its accuracy table is bitwise identical to
   the batched evaluator at every worker count and shard size; the golden
   digest under test/golden/eval.digest pins it (regold with
   EVAL_REGOLD=1). *)

open Genie_thingtalk
module Codec = Genie_dataset.Codec
module Spill = Genie_dataset.Spill
module Reader = Genie_dataset.Reader
module Example = Genie_dataset.Example
module Stream = Genie_synthesis.Stream
module Engine = Genie_synthesis.Engine
module Grammar = Genie_templates.Grammar
module Fault = Genie_conc.Fault
module Eval = Genie_parser_model.Eval
module Aligner = Genie_parser_model.Aligner

(* Worker counts under test; CI legs override via GENIE_TEST_WORKERS (CSV).
   The sequential reference (0) is always included. *)
let worker_counts =
  match Sys.getenv_opt "GENIE_TEST_WORKERS" with
  | None -> [ 0; 1; 2; 4 ]
  | Some s ->
      0
      :: (String.split_on_char ',' (String.trim s)
         |> List.filter (fun x -> x <> "")
         |> List.map int_of_string
         |> List.filter (fun w -> w > 0))

(* --- shared fixtures -------------------------------------------------------------- *)

let lib = lazy (Genie_thingpedia.Thingpedia.core_library ())

let seeds =
  lazy
    (let lib = Lazy.force lib in
     let g =
       Grammar.create lib
         ~prims:(Genie_thingpedia.Thingpedia.core_templates ())
         ~rules:(Genie_templates.Rules_thingtalk.rules lib)
         ~rng:(Genie_util.Rng.create 51) ()
     in
     let cfg =
       { Engine.default_config with
         Engine.seed = 51;
         target_per_rule = 10;
         max_depth = 2 }
     in
     Stream.synthesize_seeds ~workers:0 g cfg)

let gz = lazy (Genie_augment.Gazettes.create ~size:300 ~profile:`Extended ())
let expand_seed = 77
let expand_scale = 2.0

let reference =
  lazy
    (Stream.corpus_records ~workers:0 ~expand_scale (Lazy.force lib)
       (Lazy.force gz) ~seed:expand_seed (Lazy.force seeds))

let reference_digest = lazy (Codec.digest_records (Lazy.force reference))

(* fresh spill directories under the system temp dir; corpus_to_spill
   creates them, rm_rf tears them down *)
let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "genie-stream-test-%d-%d" (Unix.getpid ()) !dir_counter)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let spill ?fault ~workers ~threshold () =
  let dir = fresh_dir () in
  let r =
    Stream.corpus_to_spill ?fault ~workers ~expand_scale
      ~spill:{ Stream.dir; threshold }
      (Lazy.force lib) (Lazy.force gz) ~seed:expand_seed (Lazy.force seeds)
  in
  (dir, r)

let check_spill_matches label ?fault ~workers ~threshold () =
  let expect_n, expect_digest = Lazy.force reference_digest in
  let dir, r = spill ?fault ~workers ~threshold () in
  (match r with
  | Error e -> Alcotest.fail (label ^ ": " ^ e)
  | Ok st ->
      Alcotest.(check int) (label ^ ": records") expect_n st.Stream.st_records;
      Alcotest.(check string)
        (label ^ ": digest") expect_digest st.Stream.st_digest;
      (* after a successful merge only the corpus shard survives *)
      Alcotest.(check (list string))
        (label ^ ": no stray files") []
        (Spill.stray_files ~dir ~keep:[ Stream.corpus_file ]));
  rm_rf dir

(* --- differential oracle: disk == memory ------------------------------------------ *)

let thresholds = [ ("tiny", 3); ("mid", 64); ("unbounded", 0) ]

let test_spill_workers_thresholds () =
  List.iter
    (fun w ->
      List.iter
        (fun (tname, threshold) ->
          check_spill_matches
            (Printf.sprintf "workers=%d threshold=%s" w tname)
            ~workers:w ~threshold ())
        thresholds)
    worker_counts

(* Seeded shard-fault schedules: a crashed shard is retried and rewrites the
   same run files byte-identically, so no surviving schedule may change a
   byte of the merged corpus. *)
let fault_schedules =
  [ ( "crash",
      Fault.create
        { Fault.default with Fault.seed = 7; crash_rate = 0.4; crash_attempts = 2 } );
    ( "crash+drop",
      Fault.create
        { Fault.default with
          Fault.seed = 11;
          crash_rate = 0.25;
          crash_attempts = 1;
          drop_rate = 0.25;
          drop_attempts = 1 } ) ]

let test_spill_fault_invariant () =
  List.iter
    (fun (fname, fault) ->
      List.iter
        (fun w ->
          check_spill_matches
            (Printf.sprintf "fault=%s workers=%d" fname w)
            ~fault ~workers:w ~threshold:3 ())
        worker_counts)
    fault_schedules

(* --- the corpus shard reads back as the reference --------------------------------- *)

let test_corpus_readback () =
  let expected = Lazy.force reference in
  let dir, r = spill ~workers:2 ~threshold:3 () in
  (match r with
  | Error e -> Alcotest.fail e
  | Ok st ->
      let path = Option.get st.Stream.st_corpus_path in
      (* record-for-record: compare framed encodings, which is byte equality
         of the whole corpus *)
      (match Reader.read_all path with
      | Error e -> Alcotest.fail e
      | Ok got ->
          Alcotest.(check int) "readback count" (List.length expected)
            (List.length got);
          List.iter2
            (fun e g ->
              Alcotest.(check int) "seqno" e.Codec.seqno g.Codec.seqno;
              Alcotest.(check string) "framed bytes" (Codec.encode e)
                (Codec.encode g))
            expected got);
      (* the streamed digest equals the in-memory fold *)
      (match Reader.digest_file path with
      | Error e -> Alcotest.fail e
      | Ok (n, hex) ->
          Alcotest.(check (pair int string))
            "digest_file" (Lazy.force reference_digest) (n, hex));
      (* bounded readahead is observationally invisible *)
      match (Reader.read_all ~readahead:1 path, Reader.read_all ~readahead:4096 path) with
      | Ok a, Ok b ->
          Alcotest.(check bool) "readahead invariant" true (a = b)
      | Error e, _ | _, Error e -> Alcotest.fail e);
  rm_rf dir

let test_reader_poisons_on_truncation () =
  let dir, r = spill ~workers:0 ~threshold:0 () in
  (match r with
  | Error e -> Alcotest.fail e
  | Ok st ->
      let path = Option.get st.Stream.st_corpus_path in
      let len = (Unix.stat path).Unix.st_size in
      let truncated = Filename.concat dir "truncated.shard" in
      let ic = open_in_bin path in
      let bytes = really_input_string ic (len - 7) in
      close_in ic;
      let oc = open_out_bin truncated in
      output_string oc bytes;
      close_out oc;
      match Reader.read_all truncated with
      | Ok _ -> Alcotest.fail "truncated shard must not read cleanly"
      | Error _ -> ());
  rm_rf dir

(* --- codec round-trip and rejection properties ------------------------------------ *)

let record_pool = lazy (Array.of_list (Lazy.force reference))

let arbitrary_record =
  let gen =
    QCheck.Gen.(
      map
        (fun ((i, sq), (extra, (nalts, src))) ->
          let pool = Lazy.force record_pool in
          let base = pool.(i mod Array.length pool).Codec.example in
          let alt_of j =
            (pool.((i + j + 1) mod Array.length pool)).Codec.example
              .Example.program
          in
          let alternatives = List.init nalts alt_of in
          let source =
            match src mod 4 with
            | 0 -> Example.Synthesized
            | 1 -> Example.Paraphrase
            | 2 -> Example.Evaluation "developer"
            | _ -> Example.Evaluation "cheatsheet"
          in
          { Codec.seqno = sq;
            example =
              { base with
                Example.id = sq;
                tokens = base.Example.tokens @ extra;
                alternatives;
                source } })
        (pair
           (pair big_nat big_nat)
           (pair
              (small_list (oneofl [ "x"; ""; "two words"; "\xc3\xa9"; "\"" ]))
              (pair (int_bound 2) (int_bound 16)))))
  in
  QCheck.make gen ~print:(fun r ->
      Printf.sprintf "seqno=%d tokens=%d alts=%d" r.Codec.seqno
        (List.length r.Codec.example.Example.tokens)
        (List.length r.Codec.example.Example.alternatives))

let qcheck_codec_roundtrip =
  QCheck.Test.make ~name:"codec round-trips records exactly" ~count:200
    arbitrary_record (fun r ->
      match Codec.decode (Codec.encode r) with
      | Error _ -> false
      | Ok r' ->
          r'.Codec.seqno = r.Codec.seqno
          && r'.Codec.example.Example.id = r.Codec.example.Example.id
          && r'.Codec.example.Example.tokens = r.Codec.example.Example.tokens
          && r'.Codec.example.Example.source = r.Codec.example.Example.source
          && Codec.encode r' = Codec.encode r)

(* Exhaustive rejection sweeps on a few real records: cutting the frame at
   every byte boundary and flipping every byte must both yield Error — the
   exact-consumption / checksum discipline of the network codec. *)
let sample_records () =
  let pool = Lazy.force record_pool in
  List.init 3 (fun i -> pool.(i * (Array.length pool / 3)))

let test_truncation_rejected_at_every_boundary () =
  List.iter
    (fun r ->
      let s = Codec.encode r in
      for n = 0 to String.length s - 1 do
        match Codec.decode (String.sub s 0 n) with
        | Ok _ ->
            Alcotest.fail (Printf.sprintf "truncation at %d accepted" n)
        | Error _ -> ()
      done;
      match Codec.decode (s ^ "\x00") with
      | Ok _ -> Alcotest.fail "trailing byte accepted"
      | Error _ -> ())
    (sample_records ())

let test_flipped_byte_rejected_at_every_position () =
  List.iter
    (fun r ->
      let s = Codec.encode r in
      for i = 0 to String.length s - 1 do
        let b = Bytes.of_string s in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
        match Codec.decode (Bytes.to_string b) with
        | Ok _ -> Alcotest.fail (Printf.sprintf "flip at %d accepted" i)
        | Error _ -> ()
      done)
    (sample_records ())

(* --- k-way merge properties ------------------------------------------------------- *)

(* a record with a chosen seqno, built over a pooled example *)
let rec_at sq =
  let pool = Lazy.force record_pool in
  let base = pool.(sq mod Array.length pool).Codec.example in
  { Codec.seqno = sq; example = { base with Example.id = sq } }

let write_runs dir groups =
  List.concat
    (List.mapi
       (fun shard seqnos ->
         let w = Spill.Writer.create ~dir ~shard ~threshold:0 in
         List.iter (fun sq -> Spill.Writer.add w (rec_at sq)) seqnos;
         Spill.Writer.close w)
       groups)

let test_merge_is_sorted_concat () =
  let dir = fresh_dir () in
  Stream.mkdir_p dir;
  (* interleaved, disjoint seqnos handed to writers in scrambled order *)
  let groups = [ [ 9; 0; 4 ]; [ 2; 7 ]; [ 1; 3; 8; 5 ]; [ 6 ] ] in
  let runs = write_runs dir groups in
  let out = Filename.concat dir "merged.shard" in
  (match Spill.merge ~out runs with
  | Error e -> Alcotest.fail e
  | Ok (n, digest) ->
      Alcotest.(check int) "all records merged" 10 n;
      let expected = List.init 10 rec_at in
      let en, ed = Codec.digest_records expected in
      Alcotest.(check (pair int string))
        "merge = sorted concatenation" (en, ed) (n, digest);
      match Reader.read_all out with
      | Error e -> Alcotest.fail e
      | Ok got ->
          Alcotest.(check (list int))
            "ascending seqnos" (List.init 10 Fun.id)
            (List.map (fun r -> r.Codec.seqno) got));
  rm_rf dir

let test_merge_rejects_duplicate_seqno () =
  let dir = fresh_dir () in
  Stream.mkdir_p dir;
  let runs = write_runs dir [ [ 0; 1; 2 ]; [ 2; 3 ] ] in
  let out = Filename.concat dir "merged.shard" in
  (match Spill.merge ~out runs with
  | Ok _ -> Alcotest.fail "duplicate seqno across runs must be rejected"
  | Error _ ->
      Alcotest.(check bool) "no partial output left" false
        (Sys.file_exists out || Sys.file_exists (out ^ ".tmp")));
  rm_rf dir

let test_writer_threshold_runs () =
  let dir = fresh_dir () in
  Stream.mkdir_p dir;
  let mk threshold n =
    let w = Spill.Writer.create ~dir ~shard:9 ~threshold in
    List.iter (fun sq -> Spill.Writer.add w (rec_at sq)) (List.init n Fun.id);
    let runs = Spill.Writer.close w in
    List.iter (fun r -> Sys.remove r.Spill.run_path) runs;
    runs
  in
  Alcotest.(check int) "threshold 4, 10 records -> 3 runs" 3
    (List.length (mk 4 10));
  Alcotest.(check int) "unbounded -> single run" 1 (List.length (mk 0 10));
  let runs = mk 4 10 in
  Alcotest.(check int) "record counts sum" 10
    (List.fold_left (fun a r -> a + r.Spill.run_records) 0 runs);
  List.iter
    (fun r ->
      Alcotest.(check bool) "first <= last" true
        (r.Spill.run_first <= r.Spill.run_last))
    runs;
  rm_rf dir

(* --- sharded evaluation: worker- and shard-size-invariant, golden ------------------ *)

let parse = Parser.parse_program

let eval_dataset =
  lazy
    (let mk id sentence src =
       Example.make ~id ~tokens:(Genie_util.Tok.tokenize sentence)
         ~program:(parse src) ~source:Example.Synthesized ()
     in
     List.concat
       (List.init 6 (fun i ->
            let name =
              List.nth [ "alice"; "bob"; "carol"; "dan"; "eve"; "mallory" ] i
            in
            [ mk (4 * i)
                (Printf.sprintf "tweet %s" name)
                (Printf.sprintf "now => @com.twitter.post(status = \"%s\");" name);
              mk ((4 * i) + 1)
                (Printf.sprintf "show me emails from %s" name)
                (Printf.sprintf
                   "now => (@com.gmail.inbox()) filter sender_name == \"%s\" => notify;"
                   name);
              mk ((4 * i) + 2) "get a cat picture"
                "now => @com.thecatapi.get() => notify;";
              mk ((4 * i) + 3) "when i receive an email , get a cat picture"
                "monitor (@com.gmail.inbox()) => @com.thecatapi.get() => notify;" ])))

let eval_model = lazy (Aligner.train (Lazy.force lib) (Lazy.force eval_dataset))

let predict_batch sentences =
  List.map
    (fun (p : Aligner.prediction) -> p.Aligner.program)
    (Aligner.predict_batch (Lazy.force eval_model) sentences)

let batched_metrics =
  lazy
    (Eval.evaluate_batched (Lazy.force lib) predict_batch
       (Lazy.force eval_dataset))

let test_sharded_eval_invariant () =
  let expected = Lazy.force batched_metrics in
  Alcotest.(check bool) "eval set scored" true (expected.Eval.n > 0);
  List.iter
    (fun w ->
      List.iter
        (fun shard_size ->
          let got =
            Eval.evaluate_sharded ~workers:w ~shard_size (Lazy.force lib)
              predict_batch (Lazy.force eval_dataset)
          in
          let label = Printf.sprintf "workers=%d shard=%d" w shard_size in
          Alcotest.(check bool) (label ^ ": bitwise metrics") true
            (got = expected);
          Alcotest.(check string)
            (label ^ ": digest") (Eval.digest expected) (Eval.digest got))
        [ 1; 7; 32 ])
    worker_counts

(* dune runtest runs in the sandboxed test directory; dune exec from the
   project root — accept either. *)
let read_golden name =
  let rel = Filename.concat "golden" name in
  let path =
    if Sys.file_exists rel then rel else Filename.concat "test" rel
  in
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  line

let test_eval_golden_digest () =
  let m =
    Eval.evaluate_sharded ~workers:0 (Lazy.force lib) predict_batch
      (Lazy.force eval_dataset)
  in
  let line = Printf.sprintf "n=%d digest=%s" m.Eval.n (Eval.digest m) in
  if Sys.getenv_opt "EVAL_REGOLD" <> None then
    Printf.printf "test/golden/eval.digest: %s\n%!" line;
  Alcotest.(check string) "golden eval digest" (read_golden "eval.digest") line

let test_slot_f1_bounds () =
  let m = Lazy.force batched_metrics in
  Alcotest.(check bool) "slot f1 in [0,1]" true
    (m.Eval.slot_f1 >= 0.0 && m.Eval.slot_f1 <= 1.0);
  (* a perfect predictor that echoes the gold program has slot F1 = 1 *)
  let echo =
    List.map2
      (fun (e : Example.t) (_ : string list) -> Some e.Example.program)
      (Lazy.force eval_dataset)
  in
  let perfect =
    Eval.evaluate_batched (Lazy.force lib)
      (fun sents -> echo sents)
      (Lazy.force eval_dataset)
  in
  Alcotest.(check (float 0.0)) "echo predictor slot f1" 1.0 perfect.Eval.slot_f1;
  Alcotest.(check (float 0.0)) "echo predictor accuracy" 1.0
    perfect.Eval.program_accuracy

let suite =
  [ Alcotest.test_case "spill == memory across workers x thresholds" `Slow
      test_spill_workers_thresholds;
    Alcotest.test_case "spill == memory under fault schedules" `Slow
      test_spill_fault_invariant;
    Alcotest.test_case "corpus shard reads back byte-identical" `Quick
      test_corpus_readback;
    Alcotest.test_case "reader poisons on truncated shard" `Quick
      test_reader_poisons_on_truncation;
    QCheck_alcotest.to_alcotest qcheck_codec_roundtrip;
    Alcotest.test_case "truncation rejected at every boundary" `Quick
      test_truncation_rejected_at_every_boundary;
    Alcotest.test_case "flipped byte rejected at every position" `Quick
      test_flipped_byte_rejected_at_every_position;
    Alcotest.test_case "merge is the sorted concatenation" `Quick
      test_merge_is_sorted_concat;
    Alcotest.test_case "merge rejects duplicate seqnos" `Quick
      test_merge_rejects_duplicate_seqno;
    Alcotest.test_case "writer threshold controls run count" `Quick
      test_writer_threshold_runs;
    Alcotest.test_case "sharded eval worker/shard-size invariant" `Slow
      test_sharded_eval_invariant;
    Alcotest.test_case "golden eval digest" `Quick test_eval_golden_digest;
    Alcotest.test_case "slot F1 bounds and perfect predictor" `Quick
      test_slot_f1_bounds ]
