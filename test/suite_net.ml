(* Tests for the network serving subsystem: the pure framing codec (QCheck
   round-trips, garbage rejection, byte-at-a-time reassembly), the message
   codec, the admission batcher under a virtual clock, graceful drain
   (every admitted request answered exactly once, at several pool sizes),
   and the full daemon + client + loadgen path over loopback — whose
   response stream must be digest-identical to an in-process
   [Server.run_batch ~batched:true] on the same requests.

   Everything socket-free is driven by injected clocks and fake fds so it
   is exactly reproducible; the loopback tests use a single connection
   where ordering matters (TCP preserves per-connection order, so a Drain
   frame sent after N requests is always processed after them). *)

open Genie_thingtalk
open Genie_serve
open Genie_net

let lib = Genie_thingpedia.Thingpedia.core_library ()
let parse = Parser.parse_program

(* a tiny but non-degenerate training set (mirrors suite_serve) *)
let mini_dataset () =
  let mk sentence src =
    Genie_dataset.Example.make ~id:0 ~tokens:(Genie_util.Tok.tokenize sentence)
      ~program:(parse src) ~source:Genie_dataset.Example.Synthesized ()
  in
  List.concat
    (List.init 6 (fun i ->
         let name = List.nth [ "alice"; "bob"; "carol"; "dan"; "eve"; "mallory" ] i in
         [ mk
             (Printf.sprintf "tweet %s" name)
             (Printf.sprintf "now => @com.twitter.post(status = \"%s\");" name);
           mk
             (Printf.sprintf "show me emails from %s" name)
             (Printf.sprintf
                "now => (@com.gmail.inbox()) filter sender_name == \"%s\" => notify;" name);
           mk "get a cat picture" "now => @com.thecatapi.get() => notify;";
           mk "when i receive an email , get a cat picture"
             "monitor (@com.gmail.inbox()) => @com.thecatapi.get() => notify;" ]))

let model =
  lazy
    (Genie_parser_model.Model.of_aligner
       (Genie_parser_model.Aligner.train lib (mini_dataset ())))

let utterances =
  [ "tweet alice"; "tweet bob"; "show me emails from carol"; "get a cat picture";
    "when i receive an email , get a cat picture"; "tweet dan";
    "show me emails from eve"; "tweet mallory" ]

let utterance i = List.nth utterances (i mod List.length utterances)
let request i = Request.make ~id:i (utterance i)

let mk_server ?tracer ?(workers = 0) () =
  Server.create ~lib ~model:(Lazy.force model) ~workers ?tracer ()

(* pool sizes exercised by the drain tests; CI legs override via
   GENIE_TEST_WORKERS, the sequential reference is always included *)
let worker_counts =
  match Sys.getenv_opt "GENIE_TEST_WORKERS" with
  | None -> [ 0; 1; 2; 4 ]
  | Some s ->
      0
      :: (String.split_on_char ',' (String.trim s)
         |> List.filter (fun x -> x <> "")
         |> List.map int_of_string)

(* --- framing: deterministic cases -------------------------------------------- *)

let frame_eq (a : Frame.t) (b : Frame.t) =
  a.Frame.kind = b.Frame.kind && a.Frame.payload = b.Frame.payload

let test_frame_simple_roundtrip () =
  let f = { Frame.kind = 7; payload = "hello world" } in
  let d = Frame.decoder () in
  Frame.feed d (Frame.encode f);
  (match Frame.next d with
  | Ok (Some g) -> Alcotest.(check bool) "same frame" true (frame_eq f g)
  | _ -> Alcotest.fail "expected a complete frame");
  Alcotest.(check int) "nothing left" 0 (Frame.pending_bytes d);
  match Frame.next d with
  | Ok None -> ()
  | _ -> Alcotest.fail "expected Ok None on an empty decoder"

let test_frame_empty_payload () =
  let f = { Frame.kind = 0; payload = "" } in
  let d = Frame.decoder () in
  Frame.feed d (Frame.encode f);
  match Frame.next d with
  | Ok (Some g) ->
      Alcotest.(check string) "empty payload" "" g.Frame.payload;
      Alcotest.(check int) "kind" 0 g.Frame.kind
  | _ -> Alcotest.fail "expected a complete frame"

let test_frame_max_size () =
  (* a decoder with a tiny cap: a payload at exactly the cap decodes, one
     byte over poisons with Oversized *)
  let cap = 64 in
  let d = Frame.decoder ~max_payload:cap () in
  let at = { Frame.kind = 1; payload = String.make cap 'x' } in
  Frame.feed d (Frame.encode at);
  (match Frame.next d with
  | Ok (Some g) -> Alcotest.(check int) "cap-sized payload" cap (String.length g.Frame.payload)
  | _ -> Alcotest.fail "cap-sized frame must decode");
  let over = { Frame.kind = 1; payload = String.make (cap + 1) 'x' } in
  Frame.feed d (Frame.encode over);
  (match Frame.next d with
  | Error (Frame.Oversized n) -> Alcotest.(check int) "declared size" (cap + 1) n
  | _ -> Alcotest.fail "expected Oversized");
  (* poisoned: same error forever, even after more (valid) bytes *)
  Frame.feed d (Frame.encode at);
  match Frame.next d with
  | Error (Frame.Oversized _) -> ()
  | _ -> Alcotest.fail "decoder must stay poisoned"

let test_frame_garbage_prefix () =
  let d = Frame.decoder () in
  Frame.feed d "XYZZY";
  (match Frame.next d with
  | Error (Frame.Bad_magic _) -> ()
  | _ -> Alcotest.fail "garbage must be rejected as Bad_magic");
  (* the error is permanent *)
  Frame.feed d (Frame.encode { Frame.kind = 1; payload = "ok" });
  match Frame.next d with
  | Error (Frame.Bad_magic _) -> ()
  | _ -> Alcotest.fail "decoder must stay poisoned after garbage"

let test_frame_garbage_rejected_before_length () =
  (* one wrong byte is enough: rejection must not wait for the (bogus)
     declared length to be satisfied *)
  let d = Frame.decoder () in
  Frame.feed d "Q";
  match Frame.next d with
  | Error (Frame.Bad_magic _) -> ()
  | _ -> Alcotest.fail "first wrong byte must already reject"

let test_frame_bad_version () =
  let good = Frame.encode { Frame.kind = 1; payload = "p" } in
  let bad = Bytes.of_string good in
  Bytes.set bad 2 (Char.chr 99);
  let d = Frame.decoder () in
  Frame.feed d (Bytes.to_string bad);
  match Frame.next d with
  | Error (Frame.Bad_version 99) -> ()
  | _ -> Alcotest.fail "expected Bad_version 99"

let test_frame_truncated () =
  let wire = Frame.encode { Frame.kind = 3; payload = "abcdefgh" } in
  let d = Frame.decoder () in
  (* everything but the last byte: not an error, just incomplete *)
  Frame.feed d ~len:(String.length wire - 1) wire;
  (match Frame.next d with
  | Ok None -> ()
  | _ -> Alcotest.fail "truncated frame must be Ok None (need more)");
  Alcotest.(check bool) "truncation is visible" true (Frame.pending_bytes d > 0);
  (* the last byte completes it *)
  Frame.feed d ~off:(String.length wire - 1) wire;
  match Frame.next d with
  | Ok (Some f) -> Alcotest.(check string) "payload" "abcdefgh" f.Frame.payload
  | _ -> Alcotest.fail "expected completion"

let test_frame_byte_at_a_time () =
  let frames =
    [ { Frame.kind = 1; payload = "" };
      { Frame.kind = 200; payload = "x" };
      { Frame.kind = 9; payload = String.init 257 (fun i -> Char.chr (i land 0xff)) } ]
  in
  let wire = String.concat "" (List.map Frame.encode frames) in
  let d = Frame.decoder () in
  let got = ref [] in
  String.iter
    (fun ch ->
      Frame.feed d (String.make 1 ch);
      let rec drain () =
        match Frame.next d with
        | Ok (Some f) ->
            got := f :: !got;
            drain ()
        | Ok None -> ()
        | Error e -> Alcotest.fail (Frame.error_to_string e)
      in
      drain ())
    wire;
  let got = List.rev !got in
  Alcotest.(check int) "all frames" (List.length frames) (List.length got);
  List.iter2
    (fun a b -> Alcotest.(check bool) "frame equal" true (frame_eq a b))
    frames got

let test_read_into_byte_fd () =
  (* a fake fd delivering exactly one byte per read call *)
  let wire =
    Frame.encode { Frame.kind = 5; payload = "payload one" }
    ^ Frame.encode { Frame.kind = 6; payload = "" }
  in
  let pos = ref 0 in
  let read buf _len =
    if !pos >= String.length wire then 0
    else begin
      Bytes.set buf 0 wire.[!pos];
      incr pos;
      1
    end
  in
  let d = Frame.decoder () in
  (match Frame.read_into d ~read with
  | Ok (Some f) -> Alcotest.(check string) "first frame" "payload one" f.Frame.payload
  | _ -> Alcotest.fail "expected first frame");
  (match Frame.read_into d ~read with
  | Ok (Some f) -> Alcotest.(check int) "second frame kind" 6 f.Frame.kind
  | _ -> Alcotest.fail "expected second frame");
  (* end of stream, nothing pending: a clean EOF *)
  match Frame.read_into d ~read with
  | Ok None -> Alcotest.(check int) "clean eof" 0 (Frame.pending_bytes d)
  | _ -> Alcotest.fail "expected clean EOF"

let test_read_into_truncated_stream () =
  let wire = Frame.encode { Frame.kind = 5; payload = "cut short" } in
  let cut = String.sub wire 0 (String.length wire - 3) in
  let pos = ref 0 in
  let read buf len =
    let n = min len (String.length cut - !pos) in
    Bytes.blit_string cut !pos buf 0 n;
    pos := !pos + n;
    n
  in
  let d = Frame.decoder () in
  match Frame.read_into d ~read with
  | Ok None ->
      Alcotest.(check bool) "truncation detected" true (Frame.pending_bytes d > 0)
  | _ -> Alcotest.fail "expected EOF with pending bytes"

(* --- framing: QCheck ---------------------------------------------------------- *)

let arb_frames_and_chunk =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (1 -- 5)
           (map
              (fun (kind, payload) -> { Frame.kind; payload })
              (pair (0 -- 255)
                 (string_size ~gen:(map Char.chr (0 -- 255)) (0 -- 300)))))
        (1 -- 7))
  in
  QCheck.make gen ~print:(fun (fs, c) ->
      Printf.sprintf "%d frames (lens %s), chunk=%d" (List.length fs)
        (String.concat ","
           (List.map (fun f -> string_of_int (String.length f.Frame.payload)) fs))
        c)

let qcheck_frame_roundtrip =
  QCheck.Test.make ~name:"encode . chunked decode = identity" ~count:300
    arb_frames_and_chunk (fun (frames, chunk) ->
      let wire = String.concat "" (List.map Frame.encode frames) in
      let d = Frame.decoder () in
      let got = ref [] in
      let n = String.length wire in
      let i = ref 0 in
      while !i < n do
        let len = min chunk (n - !i) in
        Frame.feed d ~off:!i ~len wire;
        i := !i + len;
        let rec drain () =
          match Frame.next d with
          | Ok (Some f) ->
              got := f :: !got;
              drain ()
          | Ok None -> ()
          | Error e -> QCheck.Test.fail_report (Frame.error_to_string e)
        in
        drain ()
      done;
      let got = List.rev !got in
      Frame.pending_bytes d = 0
      && List.length got = List.length frames
      && List.for_all2 frame_eq frames got)

(* --- codec -------------------------------------------------------------------- *)

let msg_eq (a : Codec.msg) (b : Codec.msg) = a = b

let roundtrip_msg m =
  let d = Frame.decoder () in
  Frame.feed d (Codec.encode m);
  match Frame.next d with
  | Ok (Some f) -> (
      match Codec.decode f with
      | Ok m' -> m'
      | Error e -> Alcotest.fail ("decode: " ^ e))
  | _ -> Alcotest.fail "expected one complete frame"

let test_codec_roundtrip_all_kinds () =
  let wr =
    { Codec.rq_id = 42;
      rq_utterance = "tweet alice";
      rq_execute = true;
      rq_ticks = 7;
      rq_deadline_ms = Some 12.5 }
  in
  let rs =
    { Codec.rs_id = 42;
      rs_status = "ok";
      rs_program = Some "now => @com.twitter.post(status = \"alice\");";
      rs_nn_tokens = [ "now"; "=>"; "@com.twitter.post" ];
      rs_score = -3.25;
      rs_from_cache = true;
      rs_degraded = false;
      rs_attempts = 2;
      rs_worker = 3;
      rs_notifications = 1;
      rs_side_effects = 0;
      rs_error = None;
      rs_total_ns = 123456.0;
      rs_queue_ns = 789.0 }
  in
  List.iter
    (fun m -> Alcotest.(check bool) "roundtrip" true (msg_eq m (roundtrip_msg m)))
    [ Codec.Hello "test-client";
      Codec.Request wr;
      Codec.Request { wr with Codec.rq_deadline_ms = None };
      Codec.Response rs;
      Codec.Response
        { rs with
          Codec.rs_program = None;
          rs_error = Some "boom";
          rs_nn_tokens = [] };
      Codec.Stats_request;
      Codec.Stats "{\"requests\": 3}";
      Codec.Drain;
      Codec.Bye ]

let test_codec_rejects_trailing_bytes () =
  let m = Codec.Request
      { Codec.rq_id = 1; rq_utterance = "x"; rq_execute = false; rq_ticks = 0;
        rq_deadline_ms = None }
  in
  let d = Frame.decoder () in
  Frame.feed d (Codec.encode m);
  match Frame.next d with
  | Ok (Some f) -> (
      let bloated = { f with Frame.payload = f.Frame.payload ^ "!" } in
      match Codec.decode bloated with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "trailing payload bytes must be rejected")
  | _ -> Alcotest.fail "expected a frame"

let test_codec_rejects_truncated_payload () =
  let m = Codec.Stats "0123456789" in
  let d = Frame.decoder () in
  Frame.feed d (Codec.encode m);
  match Frame.next d with
  | Ok (Some f) -> (
      let cut =
        { f with Frame.payload = String.sub f.Frame.payload 0 3 }
      in
      match Codec.decode cut with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "truncated payload must be rejected")
  | _ -> Alcotest.fail "expected a frame"

let arb_wire_request =
  let gen =
    QCheck.Gen.(
      map
        (fun (id, utt, (execute, ticks, deadline)) ->
          { Codec.rq_id = id;
            rq_utterance = utt;
            rq_execute = execute;
            rq_ticks = ticks;
            rq_deadline_ms = deadline })
        (triple (0 -- 1_000_000)
           (string_size ~gen:(map Char.chr (32 -- 126)) (0 -- 60))
           (triple bool (0 -- 100)
              (opt (map (fun f -> f +. 0.25) (float_bound_exclusive 1000.0))))))
  in
  QCheck.make gen ~print:(fun r -> Printf.sprintf "rq#%d" r.Codec.rq_id)

let qcheck_codec_request_roundtrip =
  QCheck.Test.make ~name:"request payloads roundtrip" ~count:300 arb_wire_request
    (fun wr ->
      let d = Frame.decoder () in
      Frame.feed d (Codec.encode (Codec.Request wr));
      match Frame.next d with
      | Ok (Some f) -> Codec.decode f = Ok (Codec.Request wr)
      | _ -> false)

let test_digest_order_independent () =
  let r i status =
    { Codec.rs_id = i;
      rs_status = status;
      rs_program = Some (Printf.sprintf "prog%d" i);
      rs_nn_tokens = [ "a"; "b" ];
      rs_score = float_of_int i *. 0.5;
      rs_from_cache = i mod 2 = 0;
      rs_degraded = false;
      rs_attempts = 0;
      rs_worker = i;
      rs_notifications = 0;
      rs_side_effects = 0;
      rs_error = None;
      rs_total_ns = float_of_int (i * 1000);
      rs_queue_ns = 0.0 }
  in
  let rs = List.init 9 (fun i -> r i "ok") in
  let shuffled = List.rev rs in
  Alcotest.(check string) "order-independent" (Codec.digest rs) (Codec.digest shuffled);
  (* worker / timing / cache attribution must NOT affect the digest... *)
  let relabeled =
    List.map
      (fun x ->
        { x with
          Codec.rs_worker = 99;
          rs_total_ns = 0.0;
          rs_queue_ns = 5.0;
          rs_from_cache = not x.Codec.rs_from_cache })
      rs
  in
  Alcotest.(check string) "insensitive to worker/timing/cache"
    (Codec.digest rs) (Codec.digest relabeled);
  (* ...but any answer-bearing field must *)
  let broken = List.map (fun x -> { x with Codec.rs_status = "error" }) rs in
  Alcotest.(check bool) "sensitive to status" true
    (Codec.digest rs <> Codec.digest broken)

(* --- batcher under a virtual clock -------------------------------------------- *)

let test_batcher_window_and_batch_max () =
  let b = Batcher.create ~capacity:100 ~batch_max:3 () in
  let window_ns = 1000.0 in
  Alcotest.(check bool) "empty not due" false (Batcher.due b ~now_ns:0.0 ~window_ns);
  (match Batcher.admit b ~now_ns:10.0 "a" with
  | `Admitted -> ()
  | _ -> Alcotest.fail "admit a");
  Alcotest.(check bool) "young not due" false (Batcher.due b ~now_ns:500.0 ~window_ns);
  Alcotest.(check (option (float 1e-9))) "deadline = enq + window"
    (Some 1010.0)
    (Batcher.next_deadline_ns b ~window_ns);
  Alcotest.(check bool) "aged due" true (Batcher.due b ~now_ns:1010.0 ~window_ns);
  ignore (Batcher.admit b ~now_ns:20.0 "b");
  ignore (Batcher.admit b ~now_ns:30.0 "c");
  (* batch_max reached: due regardless of age *)
  Alcotest.(check bool) "full due" true (Batcher.due b ~now_ns:31.0 ~window_ns);
  let batch = Batcher.take b ~now_ns:100.0 in
  Alcotest.(check (list string)) "fifo order" [ "a"; "b"; "c" ]
    (List.map fst batch);
  Alcotest.(check (float 1e-9)) "wait of a" 90.0 (snd (List.hd batch));
  Alcotest.(check int) "emptied" 0 (Batcher.pending b)

let test_batcher_shed_at_capacity () =
  let b = Batcher.create ~capacity:2 ~batch_max:8 () in
  ignore (Batcher.admit b ~now_ns:0.0 1);
  ignore (Batcher.admit b ~now_ns:0.0 2);
  (match Batcher.admit b ~now_ns:0.0 3 with
  | `Shed -> ()
  | _ -> Alcotest.fail "expected shed at capacity");
  let s = Batcher.stats b in
  Alcotest.(check int) "admitted" 2 s.Batcher.admitted;
  Alcotest.(check int) "shed" 1 s.Batcher.shed

let test_batcher_drain_refusal () =
  let b = Batcher.create () in
  ignore (Batcher.admit b ~now_ns:0.0 1);
  Batcher.start_drain b;
  (match Batcher.admit b ~now_ns:1.0 2 with
  | `Draining -> ()
  | _ -> Alcotest.fail "expected draining refusal");
  (* draining with work left: due with no age *)
  Alcotest.(check bool) "draining due" true
    (Batcher.due b ~now_ns:1.0 ~window_ns:1e12);
  Alcotest.(check int) "only the admitted one" 1
    (List.length (Batcher.take b ~now_ns:2.0));
  Alcotest.(check bool) "empty not due even draining" false
    (Batcher.due b ~now_ns:3.0 ~window_ns:1e12)

let test_batcher_histogram () =
  let b = Batcher.create ~capacity:100 ~batch_max:4 () in
  let admit_n n = for i = 1 to n do ignore (Batcher.admit b ~now_ns:0.0 i) done in
  admit_n 4;
  ignore (Batcher.take b ~now_ns:1.0);
  admit_n 4;
  ignore (Batcher.take b ~now_ns:1.0);
  admit_n 2;
  ignore (Batcher.take b ~now_ns:1.0);
  let s = Batcher.stats b in
  Alcotest.(check (list (pair int int))) "histogram" [ (2, 1); (4, 2) ]
    s.Batcher.batch_histogram;
  Alcotest.(check int) "max batch" 4 s.Batcher.max_batch;
  Alcotest.(check int) "batches" 3 s.Batcher.batches

(* --- graceful drain: every admitted request answered exactly once -------------- *)

(* The daemon's drain loop, deterministically: a virtual clock drives the
   batcher, [Server.run_batch ~batched:true] serves each taken batch, and
   drain begins while the queue still holds most of the requests. *)
let drain_exactly_once workers () =
  let server = mk_server ~workers () in
  let b = Batcher.create ~capacity:64 ~batch_max:4 () in
  let n = 11 in
  for i = 0 to n - 1 do
    match Batcher.admit b ~now_ns:(float_of_int i) (request i) with
    | `Admitted -> ()
    | _ -> Alcotest.fail "all requests must be admitted"
  done;
  let answered = Hashtbl.create 16 in
  let dispatch now_ns =
    let batch = Batcher.take b ~now_ns in
    let reqs = List.map fst batch in
    List.iter
      (fun (r : Response.t) ->
        Hashtbl.replace answered r.Response.id
          (1 + Option.value ~default:0 (Hashtbl.find_opt answered r.Response.id)))
      (Server.run_batch ~batched:true server reqs)
  in
  (* one full batch dispatches before shutdown arrives *)
  dispatch 100.0;
  Alcotest.(check int) "mid-batch queue" (n - 4) (Batcher.pending b);
  Batcher.start_drain b;
  (* late arrivals are refused, not queued *)
  (match Batcher.admit b ~now_ns:200.0 (request 999) with
  | `Draining -> ()
  | _ -> Alcotest.fail "post-drain admit must be refused");
  while Batcher.pending b > 0 do
    dispatch 300.0
  done;
  Server.shutdown server;
  for i = 0 to n - 1 do
    Alcotest.(check int)
      (Printf.sprintf "request %d answered exactly once" i)
      1
      (Option.value ~default:0 (Hashtbl.find_opt answered i))
  done;
  Alcotest.(check bool) "refused request never answered" false
    (Hashtbl.mem answered 999);
  let s = Batcher.stats b in
  Alcotest.(check int) "refused count" 1 s.Batcher.refused_draining;
  Alcotest.(check int) "admitted count" n s.Batcher.admitted

(* --- loopback: daemon + client ------------------------------------------------ *)

let with_daemon ?tracer ?tracer_slot ?(workers = 0) ?(config = Daemon.default_config)
    f =
  let server = mk_server ?tracer ~workers () in
  let d = Daemon.create ?tracer ?tracer_slot ~server config in
  let dom = Domain.spawn (fun () -> Daemon.run d) in
  let finish () =
    Daemon.request_drain d;
    Domain.join dom;
    Server.shutdown server
  in
  (match f d with
  | () -> finish ()
  | exception e ->
      finish ();
      raise e);
  (d, server)

let test_loopback_digest_matches_in_process () =
  let n = 24 in
  let reqs = List.init n request in
  (* ground truth: the in-process batched path *)
  let expected =
    let server = mk_server () in
    let resps = Server.run_batch ~batched:true server reqs in
    Server.shutdown server;
    Codec.digest_of_responses resps
  in
  List.iter
    (fun workers ->
      let d, _ =
        with_daemon ~workers (fun d ->
            let c = Client.connect ~port:(Daemon.port d) () in
            (* pipeline everything, then collect *)
            List.iter (fun r -> Client.send_request c r) reqs;
            let got = ref [] in
            for _ = 1 to n do
              got := Client.recv_response c :: !got
            done;
            Alcotest.(check string)
              (Printf.sprintf "digest at workers=%d" workers)
              expected (Codec.digest !got);
            (* every response has a queue-wait measurement *)
            Alcotest.(check bool) "queue waits present" true
              (List.for_all (fun r -> r.Codec.rs_queue_ns >= 0.0) !got);
            Client.close c)
      in
      let s = Daemon.stats d in
      Alcotest.(check int) "requests seen" n s.Daemon.requests;
      Alcotest.(check int) "responses written" n s.Daemon.responses;
      Alcotest.(check bool) "drained" true s.Daemon.drained;
      Alcotest.(check int) "nothing shed" 0 s.Daemon.shed;
      Alcotest.(check int) "nothing dropped" 0 s.Daemon.dropped_responses)
    worker_counts

let test_loopback_drain_mid_stream_exactly_once () =
  List.iter
    (fun workers ->
      let n = 40 in
      let d, _ =
        with_daemon ~workers
          ~config:{ Daemon.default_config with Daemon.batch_window_ms = 1.0 }
          (fun d ->
            let c = Client.connect ~port:(Daemon.port d) () in
            (* one connection: TCP order guarantees the daemon reads all 40
               requests before the Drain frame, so all are admitted and all
               must be answered during the drain *)
            for i = 0 to n - 1 do
              Client.send_request c (request i)
            done;
            Client.drain c;
            let got = Hashtbl.create 64 in
            let count = ref 0 in
            (try
               while !count < n do
                 let r = Client.recv_response c in
                 Hashtbl.replace got r.Codec.rs_id
                   (1 + Option.value ~default:0 (Hashtbl.find_opt got r.Codec.rs_id));
                 incr count
               done
             with Failure _ -> ());
            Alcotest.(check int)
              (Printf.sprintf "all answered at workers=%d" workers)
              n !count;
            for i = 0 to n - 1 do
              Alcotest.(check int) "exactly once" 1
                (Option.value ~default:0 (Hashtbl.find_opt got i))
            done;
            Client.close c)
      in
      let s = Daemon.stats d in
      Alcotest.(check bool) "drained" true s.Daemon.drained;
      Alcotest.(check int) "responses" n s.Daemon.responses;
      Alcotest.(check int) "dropped" 0 s.Daemon.dropped_responses)
    worker_counts

let test_loopback_stats_and_shed () =
  (* a queue of 2 with pipelined pressure on one connection: the daemon
     must refuse the overflow with overloaded responses, never hang *)
  let n = 10 in
  let d, _ =
    with_daemon
      ~config:
        { Daemon.default_config with
          Daemon.queue_capacity = 2;
          (* a wide window so the queue really fills before a dispatch *)
          batch_window_ms = 200.0;
          batch_max = 2 }
      (fun d ->
        let c = Client.connect ~port:(Daemon.port d) () in
        for i = 0 to n - 1 do
          Client.send_request c (request i)
        done;
        let got = ref [] in
        for _ = 1 to n do
          got := Client.recv_response c :: !got
        done;
        let overloaded =
          List.filter (fun r -> r.Codec.rs_status = "overloaded") !got
        in
        Alcotest.(check int) "every request answered" n (List.length !got);
        Alcotest.(check bool) "some shed" true (List.length overloaded > 0);
        List.iter
          (fun r ->
            Alcotest.(check (option string)) "shed reason"
              (Some "admission queue full") r.Codec.rs_error)
          overloaded;
        (* remote stats over the wire *)
        let json = Client.server_stats c in
        Alcotest.(check bool) "stats mention shed" true
          (Genie_util.Tok.contains_substring ~sub:"\"shed\"" json);
        Client.close c)
  in
  let s = Daemon.stats d in
  Alcotest.(check bool) "shed counted" true (s.Daemon.shed > 0);
  Alcotest.(check int) "all requests answered" n (s.Daemon.responses)

let test_loopback_protocol_error_kills_connection () =
  let d, _ =
    with_daemon (fun d ->
        let port = Daemon.port d in
        (* a raw socket sending garbage: the daemon must close it *)
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        ignore (Unix.write_substring fd "NOT A FRAME" 0 11);
        let buf = Bytes.create 16 in
        Alcotest.(check int) "connection closed" 0 (Unix.read fd buf 0 16);
        Unix.close fd;
        (* a healthy client still works afterwards *)
        let c = Client.connect ~port () in
        let r = Client.rpc c (request 0) in
        Alcotest.(check int) "still serving" 0 r.Codec.rs_id;
        Client.close c)
  in
  let s = Daemon.stats d in
  Alcotest.(check int) "protocol error counted" 1 s.Daemon.protocol_errors

let test_loopback_observability () =
  let tracer = Genie_observe.Tracer.create ~seed:5 ~slots:2 () in
  let n = 6 in
  let d, server =
    with_daemon ~tracer ~tracer_slot:1 (fun d ->
        let c = Client.connect ~port:(Daemon.port d) () in
        for i = 0 to n - 1 do
          Client.send_request c (request i)
        done;
        for _ = 1 to n do
          ignore (Client.recv_response c)
        done;
        Client.close c)
  in
  ignore d;
  (* net.* stage counters flow into the server's metrics snapshot *)
  let stages = (Server.metrics_snapshot server).Metrics.stages in
  let get name = Option.value ~default:0 (List.assoc_opt name stages) in
  Alcotest.(check int) "net.accept" 1 (get "net.accept");
  Alcotest.(check int) "net.frame_in counts requests + bye" (n + 1)
    (get "net.frame_in");
  Alcotest.(check int) "net.queue" n (get "net.queue");
  Alcotest.(check bool) "net.batch >= 1" true (get "net.batch" >= 1);
  Alcotest.(check int) "net.frame_out" n (get "net.frame_out");
  (* spans: each batch span parents its requests' queue-wait spans *)
  let spans = Genie_observe.Tracer.spans tracer in
  let batches =
    List.filter (fun s -> s.Genie_observe.Span.name = "net.batch") spans
  in
  let queued =
    List.filter (fun s -> s.Genie_observe.Span.name = "net.queue") spans
  in
  Alcotest.(check bool) "batch spans" true (List.length batches >= 1);
  Alcotest.(check int) "one queue span per request" n (List.length queued);
  List.iter
    (fun (q : Genie_observe.Span.t) ->
      Alcotest.(check bool) "queue span has a batch parent" true
        (match q.Genie_observe.Span.parent with
        | Some p ->
            List.exists (fun b -> b.Genie_observe.Span.id = p) batches
        | None -> false))
    queued

(* --- server cumulative throughput (the fixed metric) --------------------------- *)

let test_cumulative_throughput () =
  let server = mk_server () in
  let run n = ignore (Server.run_batch server (List.init n request)) in
  run 6;
  let s1 = Server.stats server in
  Alcotest.(check int) "one batch" 1 s1.Server.batches;
  Alcotest.(check int) "last batch size" 6 s1.Server.last_batch_requests;
  run 3;
  let s2 = Server.stats server in
  Alcotest.(check int) "two batches" 2 s2.Server.batches;
  (* throughput_rps only reflects the last batch... *)
  Alcotest.(check int) "last batch size is 3" 3 s2.Server.last_batch_requests;
  (* ...while the cumulative figure covers all 9 requests over all elapsed
     time *)
  Alcotest.(check int) "all requests" 9 s2.Server.requests;
  Alcotest.(check bool) "total time accumulates" true
    (s2.Server.total_seconds >= s1.Server.total_seconds
    && s2.Server.total_seconds > 0.0);
  let expected = float_of_int s2.Server.requests /. s2.Server.total_seconds in
  Alcotest.(check (float 1e-6)) "cumulative_rps = requests / total time"
    expected s2.Server.cumulative_rps;
  Server.shutdown server

let suite =
  [ Alcotest.test_case "frame: simple roundtrip" `Quick test_frame_simple_roundtrip;
    Alcotest.test_case "frame: empty payload" `Quick test_frame_empty_payload;
    Alcotest.test_case "frame: max payload boundary" `Quick test_frame_max_size;
    Alcotest.test_case "frame: garbage prefix rejected" `Quick test_frame_garbage_prefix;
    Alcotest.test_case "frame: garbage rejected before length" `Quick
      test_frame_garbage_rejected_before_length;
    Alcotest.test_case "frame: bad version rejected" `Quick test_frame_bad_version;
    Alcotest.test_case "frame: truncated then completed" `Quick test_frame_truncated;
    Alcotest.test_case "frame: byte-at-a-time reassembly" `Quick
      test_frame_byte_at_a_time;
    Alcotest.test_case "frame: read_into over a 1-byte fd" `Quick
      test_read_into_byte_fd;
    Alcotest.test_case "frame: read_into truncated stream" `Quick
      test_read_into_truncated_stream;
    QCheck_alcotest.to_alcotest qcheck_frame_roundtrip;
    Alcotest.test_case "codec: all message kinds roundtrip" `Quick
      test_codec_roundtrip_all_kinds;
    Alcotest.test_case "codec: trailing payload bytes rejected" `Quick
      test_codec_rejects_trailing_bytes;
    Alcotest.test_case "codec: truncated payload rejected" `Quick
      test_codec_rejects_truncated_payload;
    QCheck_alcotest.to_alcotest qcheck_codec_request_roundtrip;
    Alcotest.test_case "codec: digest semantics" `Quick test_digest_order_independent;
    Alcotest.test_case "batcher: window and batch_max" `Quick
      test_batcher_window_and_batch_max;
    Alcotest.test_case "batcher: shed at capacity" `Quick test_batcher_shed_at_capacity;
    Alcotest.test_case "batcher: drain refusal" `Quick test_batcher_drain_refusal;
    Alcotest.test_case "batcher: size histogram" `Quick test_batcher_histogram;
    Alcotest.test_case "drain: exactly-once, sequential" `Quick
      (drain_exactly_once 0);
    Alcotest.test_case "drain: exactly-once, 2 workers" `Quick
      (drain_exactly_once 2);
    Alcotest.test_case "drain: exactly-once, 4 workers" `Quick
      (drain_exactly_once 4);
    Alcotest.test_case "loopback: digest matches in-process" `Quick
      test_loopback_digest_matches_in_process;
    Alcotest.test_case "loopback: drain mid-stream exactly once" `Quick
      test_loopback_drain_mid_stream_exactly_once;
    Alcotest.test_case "loopback: shed and remote stats" `Quick
      test_loopback_stats_and_shed;
    Alcotest.test_case "loopback: protocol error kills connection" `Quick
      test_loopback_protocol_error_kills_connection;
    Alcotest.test_case "loopback: probes and spans" `Quick test_loopback_observability;
    Alcotest.test_case "server: cumulative throughput" `Quick
      test_cumulative_throughput ]
