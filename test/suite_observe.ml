(* Tests for the observability layer: deterministic span identity, the
   lock-free ring tracer, the structural tree/digest oracles, probes, and
   end-to-end trace goldens over the serving and synthesis subsystems.

   Span ids and the merged span order are pure functions of (tracer seed,
   request id, attempt, stage), never of wall-clock time or worker index —
   so these tests assert *exact* span trees for seeded runs, and equality of
   trace digests between sequential and pooled servers.

   Regolding: run with OBS_DUMP=1 in the environment and the failing golden
   tests print the actual tree lines in paste-ready form. *)

open Genie_thingtalk
open Genie_serve
module Span = Genie_observe.Span
module Tracer = Genie_observe.Tracer
module Export = Genie_observe.Export
module Probe = Genie_observe.Probe

let lib = Genie_thingpedia.Thingpedia.core_library ()
let parse = Parser.parse_program

(* the same tiny training set the serve suite uses *)
let mini_dataset () =
  let mk sentence src =
    Genie_dataset.Example.make ~id:0 ~tokens:(Genie_util.Tok.tokenize sentence)
      ~program:(parse src) ~source:Genie_dataset.Example.Synthesized ()
  in
  List.concat
    (List.init 6 (fun i ->
         let name = List.nth [ "alice"; "bob"; "carol"; "dan"; "eve"; "mallory" ] i in
         [ mk
             (Printf.sprintf "tweet %s" name)
             (Printf.sprintf "now => @com.twitter.post(status = \"%s\");" name);
           mk
             (Printf.sprintf "show me emails from %s" name)
             (Printf.sprintf
                "now => (@com.gmail.inbox()) filter sender_name == \"%s\" => notify;" name);
           mk "get a cat picture" "now => @com.thecatapi.get() => notify;";
           mk "when i receive an email , get a cat picture"
             "monitor (@com.gmail.inbox()) => @com.thecatapi.get() => notify;" ]))

let model =
  lazy
    (Genie_parser_model.Model.of_aligner
       (Genie_parser_model.Aligner.train lib (mini_dataset ())))

(* eight distinct utterances: under these, every fault-class decision and
   every cache outcome is identical between serving paths, so even fault-run
   goldens compare strictly *)
let distinct_utterances =
  [ "tweet alice"; "tweet bob"; "show me emails from carol"; "get a cat picture";
    "when i receive an email , get a cat picture"; "tweet dan";
    "show me emails from eve"; "tweet mallory" ]

let new_tracer ?(seed = 42) ?(capacity = 4096) ~workers () =
  Tracer.create ~seed ~capacity ~slots:(max 1 workers + 1) ()

let serve ?fault ?admission_capacity ?degrade ?(max_retries = 2) ~workers
    ~tracer reqs =
  let model = Lazy.force model in
  let server =
    Server.create ~lib ~model ~workers ~queue_capacity:16 ?fault
      ?admission_capacity ?degrade ~max_retries ~retry_backoff_ms:0.01 ~tracer
      ()
  in
  let rs = Server.run_batch server reqs in
  let snap = Server.metrics_snapshot server in
  Server.shutdown server;
  (rs, snap)

let requests_of utterances = List.mapi (fun i u -> Request.make ~id:i u) utterances

(* everything deterministic about a response (mirrors suite_serve) *)
let response_digest (r : Response.t) =
  Printf.sprintf "#%d %s %s cache=%b degraded=%b attempts=%d" r.Response.id
    (Response.status_to_string r.Response.status)
    (Option.value ~default:"-" r.Response.program_text)
    r.Response.from_cache r.Response.degraded r.Response.attempts

let check_golden name expected lines =
  if Sys.getenv_opt "OBS_DUMP" <> None then begin
    Printf.printf "=== %s ===\n" name;
    List.iter (fun l -> Printf.printf "    %S;\n" l) lines;
    Printf.printf "=== end %s ===\n%!" name
  end;
  Alcotest.(check (list string)) name expected lines

(* --- span identity ---------------------------------------------------------------- *)

let test_span_identity () =
  let id ?(seed = 1) ?(request = 7) ?(attempt = 0) ?(seq = 3) ?(name = "parse")
      () =
    Span.id_of ~seed ~request ~attempt ~seq ~name
  in
  Alcotest.(check int64) "deterministic" (id ()) (id ());
  List.iter
    (fun (label, other) ->
      Alcotest.(check bool) (label ^ " changes the id") false
        (Int64.equal (id ()) other))
    [ ("seed", id ~seed:2 ());
      ("request", id ~request:8 ());
      ("attempt", id ~attempt:1 ());
      ("seq", id ~seq:4 ());
      ("name", id ~name:"exec" ()) ];
  (* the constructor derives its id from the same coordinates *)
  let sp =
    Span.v ~seed:1 ~request:7 ~seq:3 ~start_ns:123.0 ~dur_ns:4.0 "parse"
  in
  Alcotest.(check int64) "v agrees with id_of" (id ()) sp.Span.id;
  (* order ignores timestamps entirely *)
  let late = { sp with Span.start_ns = 9e9; dur_ns = 1e9 } in
  Alcotest.(check int) "order ignores time" 0 (Span.order sp late)

(* --- tracer ring ------------------------------------------------------------------ *)

let test_tracer_ring_overflow () =
  let t = Tracer.create ~seed:3 ~capacity:4 ~slots:1 () in
  for i = 0 to 9 do
    Tracer.record t ~slot:0
      (Span.v ~seed:3 ~request:0 ~seq:i ~start_ns:0.0 ~dur_ns:0.0 "s")
  done;
  Alcotest.(check int) "recorded counts everything" 10 (Tracer.recorded t);
  Alcotest.(check int) "dropped = overflow" 6 (Tracer.dropped t);
  let kept = Tracer.spans t in
  Alcotest.(check int) "ring keeps capacity spans" 4 (List.length kept);
  (* the ring overwrites oldest-first: the survivors are the last four *)
  Alcotest.(check (list int)) "newest retained" [ 6; 7; 8; 9 ]
    (List.map (fun (sp : Span.t) -> sp.Span.seq) kept);
  Tracer.reset t;
  Alcotest.(check int) "reset clears" 0 (Tracer.recorded t);
  Alcotest.(check int) "reset clears spans" 0 (List.length (Tracer.spans t))

let test_tracer_disabled_and_scopes () =
  Alcotest.(check bool) "disabled flag" false (Tracer.enabled Tracer.disabled);
  Tracer.record Tracer.disabled ~slot:0
    (Span.v ~seed:0 ~request:0 ~seq:0 ~start_ns:0.0 ~dur_ns:0.0 "x");
  Alcotest.(check int) "disabled records nothing" 0
    (Tracer.recorded Tracer.disabled);
  Alcotest.(check bool) "disabled scope is None" true
    (Tracer.scope Tracer.disabled ~slot:0 ~request:0 ~attempt:0 ~parent:0L
    = None);
  let t = Tracer.create ~seed:9 ~capacity:16 ~slots:1 () in
  let parent = Span.id_of ~seed:9 ~request:5 ~attempt:0 ~seq:3 ~name:"parse" in
  (match Tracer.scope t ~slot:0 ~request:5 ~attempt:0 ~parent with
  | None -> Alcotest.fail "enabled tracer must return a scope"
  | Some sc ->
      Tracer.sub sc ~seq:10 ~attrs:[ ("scored", "2") ] ~start_ns:1.0 ~dur_ns:2.0
        "decode.rank");
  match Tracer.spans t with
  | [ sp ] ->
      Alcotest.(check string) "child name" "decode.rank" sp.Span.name;
      Alcotest.(check (option int64)) "child parent" (Some parent) sp.Span.parent;
      Alcotest.(check int) "child request" 5 sp.Span.request
  | l -> Alcotest.failf "expected one span, got %d" (List.length l)

(* --- probes ----------------------------------------------------------------------- *)

let test_probe_counters () =
  let p = Probe.create () in
  Alcotest.(check (list (pair string int))) "fresh probe empty" [] (Probe.counts p);
  Probe.incr p Probe.Tokenize;
  Probe.incr p Probe.Tokenize;
  Probe.incr p Probe.Shed;
  Alcotest.(check int) "get" 2 (Probe.get p Probe.Tokenize);
  Alcotest.(check int) "untouched stage" 0 (Probe.get p Probe.Parse);
  (* non-zero only, in fixed stage order *)
  Alcotest.(check (list (pair string int))) "counts"
    [ ("tokenize", 2); ("shed", 1) ]
    (Probe.counts p);
  Probe.reset p;
  Alcotest.(check (list (pair string int))) "reset" [] (Probe.counts p)

let test_server_stage_counters_exact () =
  (* two passes over eight distinct utterances: the second pass is all cache
     hits, and the stage counters land exactly *)
  let reqs =
    List.mapi (fun i u -> Request.make ~id:i u)
      (distinct_utterances @ distinct_utterances)
  in
  let _, snap = serve ~workers:0 ~tracer:Tracer.disabled reqs in
  Alcotest.(check (list (pair string int))) "stage counters"
    [ ("tokenize", 16); ("cache_hit", 8); ("cache_miss", 8); ("parse", 8) ]
    snap.Metrics.stages

(* --- exact span-tree goldens ------------------------------------------------------ *)

let tree ?fault ?admission_capacity ?degrade ?(workers = 0) utterances =
  let tracer = new_tracer ~workers () in
  let _, _ = serve ?fault ?admission_capacity ?degrade ~workers ~tracer
      (requests_of utterances)
  in
  Export.tree_lines ~strict:true (Tracer.spans tracer)

let test_golden_clean () =
  check_golden "clean run span tree"
    [ "request req=0 att=0 status=ok";
      "  tokenize req=0 att=0";
      "  cache req=0 att=0 cache=miss";
      "  parse req=0 att=0";
      "    decode.rank req=0 att=0 scored=10";
      "    decode.beam req=0 att=0 kept=6";
      "    decode.slots req=0 att=0 completed=6";
      "request req=1 att=0 status=ok";
      "  tokenize req=1 att=0";
      "  cache req=1 att=0 cache=hit";
      "request req=2 att=0 status=ok";
      "  tokenize req=2 att=0";
      "  cache req=2 att=0 cache=miss";
      "  parse req=2 att=0";
      "    decode.rank req=2 att=0 scored=12";
      "    decode.beam req=2 att=0 kept=6";
      "    decode.slots req=2 att=0 completed=6" ]
    (tree [ "tweet alice"; "tweet alice"; "get a cat picture" ])

let test_golden_crash_retry () =
  let fault =
    Fault.create
      { Fault.default with Fault.seed = 5; crash_rate = 1.0; crash_attempts = 1 }
  in
  check_golden "crash + retry span tree"
    [ "crash req=0 att=0";
      "retry req=0 att=0";
      "backoff req=0 att=0";
      "request req=0 att=1 status=ok";
      "  tokenize req=0 att=1";
      "  cache req=0 att=1 cache=miss";
      "  parse req=0 att=1";
      "    decode.rank req=0 att=1 scored=10";
      "    decode.beam req=0 att=1 kept=6";
      "    decode.slots req=0 att=1 completed=6" ]
    (tree ~fault [ "tweet alice" ])

let test_golden_drop_retry () =
  let fault =
    Fault.create
      { Fault.default with Fault.seed = 9; drop_rate = 1.0; drop_attempts = 1 }
  in
  check_golden "drop + retry span tree"
    [ "drop req=0 att=0";
      "retry req=0 att=0";
      "backoff req=0 att=0";
      "request req=0 att=1 status=ok";
      "  tokenize req=0 att=1";
      "  cache req=0 att=1 cache=miss";
      "  parse req=0 att=1";
      "    decode.rank req=0 att=1 scored=10";
      "    decode.beam req=0 att=1 kept=6";
      "    decode.slots req=0 att=1 completed=6" ]
    (tree ~fault [ "tweet alice" ])

let test_golden_deadline_timeout () =
  (* 50 virtual ms of injected decode latency against a 5 ms deadline: the
     parse span carries the injected marker and the request resolves timeout *)
  let fault =
    Fault.create
      { Fault.default with Fault.seed = 3; latency_rate = 1.0; latency_ns = 50e6 }
  in
  let tracer = new_tracer ~workers:0 () in
  let _ =
    serve ~fault ~workers:0 ~tracer
      [ Request.make ~deadline_ms:5.0 ~id:0 "tweet alice" ]
  in
  check_golden "deadline timeout span tree"
    [ "request req=0 att=0 status=timeout";
      "  tokenize req=0 att=0";
      "  cache req=0 att=0 cache=miss";
      "  parse req=0 att=0 injected=true";
      "    decode.rank req=0 att=0 scored=10";
      "    decode.beam req=0 att=0 kept=6";
      "    decode.slots req=0 att=0 completed=6" ]
    (Export.tree_lines ~strict:true (Tracer.spans tracer))

let test_golden_shed_and_degraded () =
  (* warm one key, then saturate a capacity-1 server: the repeat answers
     degraded from cache, the unknown key is shed *)
  let model = Lazy.force model in
  let tracer = new_tracer ~workers:0 () in
  let server =
    Server.create ~lib ~model ~admission_capacity:1 ~tracer ()
  in
  ignore (Server.run_batch server [ Request.make ~id:0 "tweet alice" ]);
  ignore
    (Server.run_batch server
       [ Request.make ~id:1 "tweet alice";
         Request.make ~id:2 "tweet alice";
         Request.make ~id:3 "tweet bob" ]);
  Server.shutdown server;
  check_golden "shed + degraded span tree"
    [ "request req=0 att=0 status=ok";
      "  tokenize req=0 att=0";
      "  cache req=0 att=0 cache=miss";
      "  parse req=0 att=0";
      "    decode.rank req=0 att=0 scored=10";
      "    decode.beam req=0 att=0 kept=6";
      "    decode.slots req=0 att=0 completed=6";
      "request req=1 att=0 status=ok";
      "  tokenize req=1 att=0";
      "  cache req=1 att=0 cache=hit";
      "degraded req=2 att=0";
      "shed req=3 att=0" ]
    (Export.tree_lines ~strict:true (Tracer.spans tracer))

(* --- digests across worker counts ------------------------------------------------- *)

let zipf_requests n =
  Traffic.generate
    ~rng:(Genie_util.Rng.create 11)
    ~utterances:distinct_utterances n

let test_clean_digest_identical_across_pools () =
  let digest workers =
    let tracer = new_tracer ~workers () in
    let _ = serve ~workers ~tracer (zipf_requests 60) in
    (Export.digest ~strict:true (Tracer.spans tracer),
     List.length (Tracer.spans tracer))
  in
  let d_seq, n_seq = digest 0 in
  let d2, n2 = digest 2 in
  let d4, n4 = digest 4 in
  Alcotest.(check bool) "spans recorded" true (n_seq > 0);
  Alcotest.(check int) "same span count 2w" n_seq n2;
  Alcotest.(check int) "same span count 4w" n_seq n4;
  Alcotest.(check string) "2-worker digest = sequential" d_seq d2;
  Alcotest.(check string) "4-worker digest = sequential" d_seq d4;
  (* and re-running is byte-stable *)
  let d_seq', _ = digest 0 in
  Alcotest.(check string) "repeat run identical" d_seq d_seq'

let test_fault_digest_identical_across_pools () =
  (* distinct keys per request: crash/drop decisions and cache outcomes are
     then (id, attempt)-pure in both paths, so even the strict digest —
     volatile attrs included — must agree *)
  let fault =
    Fault.create
      { Fault.default with
        Fault.seed = 21;
        crash_rate = 0.5;
        crash_attempts = 1;
        drop_rate = 0.3;
        drop_attempts = 1 }
  in
  let digest workers =
    let tracer = new_tracer ~workers () in
    let _ = serve ~fault ~workers ~tracer (requests_of distinct_utterances) in
    Export.digest ~strict:true (Tracer.spans tracer)
  in
  Alcotest.(check string) "pooled = sequential under faults" (digest 0) (digest 3)

let test_strict_vs_relaxed_digest () =
  let sp cache_attr =
    Span.v ~seed:1 ~request:0 ~seq:2 ~attrs:[ ("cache", cache_attr) ]
      ~start_ns:0.0 ~dur_ns:0.0 "cache"
  in
  let hit = [ sp "hit" ] and miss = [ sp "miss" ] in
  Alcotest.(check bool) "strict digests differ" false
    (Export.digest ~strict:true hit = Export.digest ~strict:true miss);
  Alcotest.(check string) "relaxed digests agree"
    (Export.digest ~strict:false hit)
    (Export.digest ~strict:false miss)

(* --- tracing is free of observable effect on responses ---------------------------- *)

let test_tracer_does_not_change_responses () =
  let fault =
    Fault.create
      { Fault.default with Fault.seed = 21; crash_rate = 0.5; crash_attempts = 1 }
  in
  let run ~tracer =
    List.map response_digest
      (fst (serve ~fault ~workers:0 ~tracer (zipf_requests 40)))
  in
  Alcotest.(check (list string)) "responses byte-identical with tracing on"
    (run ~tracer:Tracer.disabled)
    (run ~tracer:(new_tracer ~workers:0 ()))

(* --- export: JSONL and flame ------------------------------------------------------ *)

let test_jsonl_shape () =
  let tracer = new_tracer ~workers:0 () in
  let _ = serve ~workers:0 ~tracer (requests_of distinct_utterances) in
  let spans = Tracer.spans tracer in
  let jsonl = Export.to_jsonl spans in
  let lines = String.split_on_char '\n' (String.trim jsonl) in
  Alcotest.(check int) "one line per span" (List.length spans) (List.length lines);
  List.iter
    (fun line ->
      Alcotest.(check bool) "compact object" true
        (String.length line > 2
        && line.[0] = '{'
        && line.[String.length line - 1] = '}');
      Alcotest.(check bool) "id field" true
        (Genie_util.Tok.contains_substring ~sub:"\"id\":" line);
      Alcotest.(check bool) "single line" false (String.contains line '\n'))
    lines;
  (* parent references resolve within the trace *)
  let ids =
    List.fold_left
      (fun acc (sp : Span.t) -> sp.Span.id :: acc)
      [] spans
  in
  List.iter
    (fun (sp : Span.t) ->
      match sp.Span.parent with
      | None -> ()
      | Some p ->
          Alcotest.(check bool) "parent id present in trace" true
            (List.mem p ids))
    spans

let test_flame_self_time () =
  let tracer = new_tracer ~workers:0 () in
  let _ = serve ~workers:0 ~tracer (requests_of distinct_utterances) in
  let spans = Tracer.spans tracer in
  let frames = Export.flame spans in
  let frame name = List.find_opt (fun f -> f.Export.name = name) frames in
  (match frame "request" with
  | None -> Alcotest.fail "request frame missing"
  | Some f ->
      Alcotest.(check int) "one request frame per request" 8 f.Export.count;
      Alcotest.(check bool) "self <= total" true
        (f.Export.self_ns <= f.Export.total_ns +. 1e-6);
      Alcotest.(check bool) "self nonnegative" true (f.Export.self_ns >= 0.0));
  (match frame "decode.rank" with
  | None -> Alcotest.fail "decode frame missing"
  | Some f -> Alcotest.(check int) "one decode per miss" 8 f.Export.count);
  (* every span name lands in exactly one frame *)
  let names = List.sort_uniq compare (List.map (fun (sp : Span.t) -> sp.Span.name) spans) in
  Alcotest.(check int) "one frame per name" (List.length names)
    (List.length frames)

(* --- synthesis tracing ------------------------------------------------------------ *)

let test_synthesis_trace_deterministic () =
  let prims = Genie_thingpedia.Thingpedia.core_templates () in
  let rules = Genie_templates.Rules_thingtalk.rules lib in
  let run () =
    let g =
      Genie_templates.Grammar.create lib ~prims ~rules
        ~rng:(Genie_util.Rng.create 5) ()
    in
    let tracer = Tracer.create ~seed:7 ~capacity:65536 ~slots:1 () in
    let pairs =
      Genie_synthesis.Engine.synthesize ~tracer g
        { Genie_synthesis.Engine.default_config with
          seed = 5;
          target_per_rule = 20;
          max_depth = 3 }
    in
    (List.length pairs, Tracer.spans tracer)
  in
  let n1, spans1 = run () in
  let n2, spans2 = run () in
  Alcotest.(check int) "same corpus" n1 n2;
  Alcotest.(check bool) "spans recorded" true (List.length spans1 > 0);
  Alcotest.(check string) "seeded synthesis traces identically"
    (Export.digest ~strict:true spans1)
    (Export.digest ~strict:true spans2);
  (* structure: one depth root per depth, template spans nested beneath *)
  let roots =
    List.filter (fun (sp : Span.t) -> sp.Span.parent = None) spans1
  in
  Alcotest.(check (list string)) "depth roots" [ "depth"; "depth"; "depth" ]
    (List.map (fun (sp : Span.t) -> sp.Span.name) roots);
  List.iter
    (fun (sp : Span.t) ->
      if sp.Span.name = "template" then
        let depth_id =
          Span.id_of ~seed:7 ~request:sp.Span.request ~attempt:0 ~seq:0
            ~name:"depth"
        in
        Alcotest.(check (option int64)) "template hangs off its depth"
          (Some depth_id) sp.Span.parent)
    spans1

let suite =
  [ Alcotest.test_case "span identity" `Quick test_span_identity;
    Alcotest.test_case "tracer ring overflow" `Quick test_tracer_ring_overflow;
    Alcotest.test_case "disabled tracer + scopes" `Quick
      test_tracer_disabled_and_scopes;
    Alcotest.test_case "probe counters" `Quick test_probe_counters;
    Alcotest.test_case "server stage counters exact" `Quick
      test_server_stage_counters_exact;
    Alcotest.test_case "golden: clean run" `Quick test_golden_clean;
    Alcotest.test_case "golden: crash + retry" `Quick test_golden_crash_retry;
    Alcotest.test_case "golden: drop + retry" `Quick test_golden_drop_retry;
    Alcotest.test_case "golden: deadline timeout" `Quick
      test_golden_deadline_timeout;
    Alcotest.test_case "golden: shed + degraded" `Quick
      test_golden_shed_and_degraded;
    Alcotest.test_case "clean digest identical across pools" `Quick
      test_clean_digest_identical_across_pools;
    Alcotest.test_case "fault digest identical across pools" `Quick
      test_fault_digest_identical_across_pools;
    Alcotest.test_case "strict vs relaxed digest" `Quick
      test_strict_vs_relaxed_digest;
    Alcotest.test_case "tracer does not change responses" `Quick
      test_tracer_does_not_change_responses;
    Alcotest.test_case "jsonl shape" `Quick test_jsonl_shape;
    Alcotest.test_case "flame self time" `Quick test_flame_self_time;
    Alcotest.test_case "synthesis trace deterministic" `Quick
      test_synthesis_trace_deterministic ]
