(* Tests for the neural substrate: tensors, autodiff gradients against finite
   differences, LSTM shapes, the pointer-generator loss, training dynamics of
   the seq2seq model and the program language model. *)

open Genie_nn

let feq = Alcotest.(check (float 1e-6))

let test_tensor_ops () =
  let a = Tensor.vector [| 1.0; 2.0; 3.0 |] in
  let b = Tensor.vector [| 4.0; 5.0; 6.0 |] in
  feq "dot" 32.0 (Tensor.dot a b);
  Alcotest.(check int) "concat size" 6 (Tensor.size (Tensor.concat_vectors a b));
  let m = Tensor.of_array 3 2 [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let r = Tensor.vec_mat a m in
  feq "vec_mat 0" 22.0 r.Tensor.data.(0);
  feq "vec_mat 1" 28.0 r.Tensor.data.(1);
  let o = Tensor.outer (Tensor.vector [| 1.; 2. |]) (Tensor.vector [| 3.; 4. |]) in
  feq "outer" 8.0 (Tensor.get o 1 1)

(* generic finite-difference check over every parameter of a model *)
let gradient_check ~loss_fn ~params ~samples ~tol =
  Optimizer.zero_grads params;
  let tape = Autodiff.new_tape () in
  let loss = loss_fn tape in
  Autodiff.backward tape loss;
  let rng = Genie_util.Rng.create 99 in
  List.iter
    (fun (p : Layers.param) ->
      for _ = 1 to samples do
        let i = Genie_util.Rng.int rng (Tensor.size p.Layers.tensor) in
        let analytic = p.Layers.grad.Tensor.data.(i) in
        let eps = 1e-5 in
        let orig = p.Layers.tensor.Tensor.data.(i) in
        p.Layers.tensor.Tensor.data.(i) <- orig +. eps;
        let lp = (loss_fn (Autodiff.new_tape ())).Autodiff.value.Tensor.data.(0) in
        p.Layers.tensor.Tensor.data.(i) <- orig -. eps;
        let lm = (loss_fn (Autodiff.new_tape ())).Autodiff.value.Tensor.data.(0) in
        p.Layers.tensor.Tensor.data.(i) <- orig;
        let numeric = (lp -. lm) /. (2.0 *. eps) in
        let err = Float.abs (analytic -. numeric) in
        let scale = Float.max 1.0 (Float.abs numeric) in
        if err /. scale > tol then
          Alcotest.fail
            (Printf.sprintf "%s[%d]: analytic %.8f vs numeric %.8f" p.Layers.name i
               analytic numeric)
      done)
    params

let test_lstm_gradients () =
  let rng = Genie_util.Rng.create 4 in
  let lstm = Layers.mk_lstm rng "l" ~input:3 ~hidden:4 in
  let proj = Layers.mk_linear rng "p" ~input:4 ~output:3 in
  let x1 = Tensor.init_uniform rng 1 3 in
  let x2 = Tensor.init_uniform rng 1 3 in
  let loss_fn tape =
    let st = Layers.lstm_init tape lstm in
    let st = Layers.lstm_step tape lstm st (Autodiff.const tape x1) in
    let st = Layers.lstm_step tape lstm st (Autodiff.const tape x2) in
    let logits = Layers.apply_linear tape proj st.Layers.h in
    let loss, _ = Autodiff.softmax_nll tape logits ~target:1 in
    loss
  in
  gradient_check ~loss_fn
    ~params:(Layers.lstm_params lstm @ Layers.linear_params proj)
    ~samples:3 ~tol:1e-3

let test_attention_gradients () =
  let rng = Genie_util.Rng.create 5 in
  let proj = Layers.mk_linear rng "p" ~input:4 ~output:2 in
  let states = List.init 3 (fun _ -> Tensor.init_uniform rng 1 4) in
  let query = Tensor.init_uniform rng 1 4 in
  let loss_fn tape =
    let state_nodes = List.map (Autodiff.const tape) states in
    let _, context = Layers.attention tape state_nodes (Autodiff.const tape query) in
    let logits = Layers.apply_linear tape proj context in
    let loss, _ = Autodiff.softmax_nll tape logits ~target:0 in
    loss
  in
  gradient_check ~loss_fn ~params:(Layers.linear_params proj) ~samples:4 ~tol:1e-3

let test_seq2seq_gradients () =
  let src_vocab = Vocab.of_tokens [ "a"; "b"; "c" ] in
  let tgt_vocab = Vocab.of_tokens [ "x"; "y" ] in
  let m =
    Seq2seq.create
      ~cfg:{ Seq2seq.embed_dim = 3; hidden_dim = 4; dropout = 0.0; seed = 6 }
      ~src_vocab ~tgt_vocab ()
  in
  let loss_fn tape = Seq2seq.example_loss tape m ~training:true [ "a"; "b" ] [ "x"; "y" ] in
  gradient_check ~loss_fn ~params:(Seq2seq.params m) ~samples:2 ~tol:1e-2

let test_softmax_sums_to_one () =
  let tape = Autodiff.new_tape () in
  let x = Autodiff.const tape (Tensor.vector [| 1.0; -2.0; 0.5 |]) in
  let p = Autodiff.softmax tape x in
  let total = Array.fold_left ( +. ) 0.0 p.Autodiff.value.Tensor.data in
  feq "softmax normalized" 1.0 total

let test_pointer_loss_prefers_copy () =
  (* if the target only exists among the source tokens, a low gate (copy) must
     give lower loss than a high gate (generate) *)
  let tape = Autodiff.new_tape () in
  let vocab_probs = Autodiff.const tape (Tensor.vector [| 0.5; 0.5 |]) in
  let attention = Autodiff.const tape (Tensor.vector [| 0.9; 0.1 |]) in
  let loss gate_v =
    let gate = Autodiff.const tape (Tensor.vector [| gate_v |]) in
    (Autodiff.pointer_nll tape ~gate ~vocab_probs ~attention ~target:(-1)
       ~copy_positions:[ 0 ])
      .Autodiff.value
      .Tensor.data
      .(0)
  in
  Alcotest.(check bool) "copy beats generate" true (loss 0.1 < loss 0.9)

let test_seq2seq_learns_toy_task () =
  let src_vocab = Vocab.of_tokens [ "a"; "b"; "c" ] in
  let tgt_vocab = Vocab.of_tokens [ "x"; "y"; "z" ] in
  let m =
    Seq2seq.create
      ~cfg:{ Seq2seq.embed_dim = 8; hidden_dim = 16; dropout = 0.0; seed = 7 }
      ~src_vocab ~tgt_vocab ()
  in
  let data =
    [ ([ "a"; "b" ], [ "x"; "y" ]); ([ "b"; "a" ], [ "y"; "x" ]); ([ "c" ], [ "z" ]);
      ([ "a"; "c" ], [ "x"; "z" ]) ]
  in
  let losses = ref [] in
  Seq2seq.train ~epochs:60 ~lr:0.01
    ~progress:(fun r -> losses := r.Seq2seq.mean_loss :: !losses)
    m data;
  (match !losses with
  | last :: _ when last < 0.8 -> ()
  | last :: _ -> Alcotest.fail (Printf.sprintf "loss did not converge: %.3f" last)
  | [] -> Alcotest.fail "no training reports");
  List.iter
    (fun (src, tgt) ->
      Alcotest.(check (list string)) (String.concat " " src) tgt (Seq2seq.decode m src))
    data

let test_seq2seq_copies_unseen_tokens () =
  (* the pointer mechanism can emit source tokens outside the target vocab *)
  let src_vocab = Vocab.of_tokens [ "say"; "foo"; "bar"; "baz" ] in
  let tgt_vocab = Vocab.of_tokens [ "echo" ] in
  let m =
    Seq2seq.create
      ~cfg:{ Seq2seq.embed_dim = 10; hidden_dim = 24; dropout = 0.0; seed = 8 }
      ~src_vocab ~tgt_vocab ()
  in
  let data =
    [ ([ "say"; "foo" ], [ "echo"; "foo" ]); ([ "say"; "bar" ], [ "echo"; "bar" ]);
      ([ "say"; "baz" ], [ "echo"; "baz" ]) ]
  in
  Seq2seq.train ~epochs:150 ~lr:0.015 m data;
  (* the copy targets are not in the target vocabulary at all: only the
     pointer can produce them *)
  let copied =
    List.filter (fun (src, tgt) -> Seq2seq.decode m src = tgt) data
  in
  Alcotest.(check bool)
    (Printf.sprintf "copies %d/3" (List.length copied))
    true
    (List.length copied >= 2)

let test_lm_learns () =
  let vocab = Vocab.of_tokens [ "now"; "=>"; "notify"; "monitor" ] in
  let lm = Lm.create ~embed_dim:6 ~hidden_dim:8 ~vocab () in
  let seqs = List.init 20 (fun _ -> [ "now"; "=>"; "notify" ]) in
  let before = Lm.perplexity lm seqs in
  Lm.train ~epochs:8 lm seqs;
  let after = Lm.perplexity lm seqs in
  Alcotest.(check bool)
    (Printf.sprintf "perplexity drops (%.1f -> %.1f)" before after)
    true (after < before);
  Alcotest.(check bool) "near determinism" true (after < 2.0)

let test_adam_descends () =
  (* minimize ||w||^2 with Adam *)
  let rng = Genie_util.Rng.create 10 in
  let p = Layers.mk_param rng "w" 1 4 in
  let opt = Optimizer.adam ~lr:0.05 () in
  for _ = 1 to 200 do
    Optimizer.zero_grads [ p ];
    Array.iteri (fun i w -> p.Layers.grad.Tensor.data.(i) <- 2.0 *. w) p.Layers.tensor.Tensor.data;
    Optimizer.update opt [ p ]
  done;
  Alcotest.(check bool) "converged to zero" true (Tensor.l2_norm p.Layers.tensor < 1e-2)

(* Boundary behavior of the vector/view helpers: every malformed shape must
   raise rather than read (or write) out of bounds, and the accepted views
   must alias the parent's storage. *)
let expect_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")

let test_tensor_boundaries () =
  let v3 = Tensor.vector [| 1.0; 2.0; 3.0 |] in
  let m23 = Tensor.of_array 2 3 [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  (* outer: row vectors only *)
  expect_invalid "outer matrix lhs" (fun () -> Tensor.outer m23 v3);
  expect_invalid "outer matrix rhs" (fun () -> Tensor.outer v3 m23);
  (* concat_vectors: vectors only *)
  expect_invalid "concat matrix" (fun () -> Tensor.concat_vectors v3 m23);
  (* slice_vector: window must stay inside, on vectors only *)
  expect_invalid "slice of matrix" (fun () ->
      Tensor.slice_vector m23 ~start:0 ~len:2);
  expect_invalid "slice past end" (fun () ->
      Tensor.slice_vector v3 ~start:2 ~len:2);
  expect_invalid "slice negative start" (fun () ->
      Tensor.slice_vector v3 ~start:(-1) ~len:1);
  expect_invalid "slice negative len" (fun () ->
      Tensor.slice_vector v3 ~start:0 ~len:(-1));
  (* row: index in range *)
  expect_invalid "row at rows" (fun () -> Tensor.row m23 2);
  expect_invalid "row negative" (fun () -> Tensor.row m23 (-1));
  (* in-range slice and row are zero-copy views over the parent *)
  let s = Tensor.slice_vector v3 ~start:1 ~len:2 in
  Alcotest.(check int) "slice len" 2 (Tensor.size s);
  Tensor.set s 0 0 9.0;
  feq "slice aliases parent" 9.0 (Tensor.get v3 0 1);
  let r = Tensor.row m23 1 in
  Tensor.set r 0 2 8.0;
  feq "row aliases parent" 8.0 (Tensor.get m23 1 2);
  (* slice of a slice stays anchored to the same buffer *)
  let s2 = Tensor.slice_vector s ~start:1 ~len:1 in
  feq "nested slice offset" 3.0 (Tensor.get s2 0 0)

let test_kernel_shape_checks () =
  let a = Tensor.create 2 3 and b = Tensor.create 3 2 in
  let out = Tensor.create 2 3 in
  expect_invalid "add_into mismatch" (fun () -> Tensor.add_into a b ~out);
  expect_invalid "sub_into mismatch" (fun () -> Tensor.sub_into a b ~out);
  expect_invalid "mul_into out mismatch" (fun () ->
      Tensor.mul_into a a ~out:(Tensor.create 3 2));
  expect_invalid "mul_acc mismatch" (fun () -> Tensor.mul_acc a a b);
  expect_invalid "matmul_into inner dim" (fun () ->
      Tensor.matmul_into ~out:(Tensor.create 2 2) a a);
  expect_invalid "matmul_into out shape" (fun () ->
      Tensor.matmul_into ~out:(Tensor.create 3 3) a b);
  expect_invalid "matmul_nt_acc inner dim" (fun () ->
      Tensor.matmul_nt_acc ~acc:(Tensor.create 2 3) a b);
  expect_invalid "matmul_tn_acc row mismatch" (fun () ->
      Tensor.matmul_tn_acc ~acc:(Tensor.create 3 2) a b)

let test_vocab () =
  let v = Vocab.of_tokens [ "a"; "b"; "a" ] in
  Alcotest.(check int) "specials + 2" 6 (Vocab.size v);
  Alcotest.(check string) "roundtrip" "b" (Vocab.token v (Vocab.id v "b"));
  Alcotest.(check int) "unk for unseen" (Vocab.unk_id v) (Vocab.id v "zzz")

let suite =
  [ Alcotest.test_case "tensor ops" `Quick test_tensor_ops;
    Alcotest.test_case "lstm gradients vs finite differences" `Quick test_lstm_gradients;
    Alcotest.test_case "attention gradients" `Quick test_attention_gradients;
    Alcotest.test_case "seq2seq gradients" `Quick test_seq2seq_gradients;
    Alcotest.test_case "softmax normalized" `Quick test_softmax_sums_to_one;
    Alcotest.test_case "pointer loss prefers copy" `Quick test_pointer_loss_prefers_copy;
    Alcotest.test_case "seq2seq learns toy task" `Slow test_seq2seq_learns_toy_task;
    Alcotest.test_case "pointer copies unseen tokens" `Slow test_seq2seq_copies_unseen_tokens;
    Alcotest.test_case "program LM learns" `Quick test_lm_learns;
    Alcotest.test_case "adam descends" `Quick test_adam_descends;
    Alcotest.test_case "tensor view boundaries" `Quick test_tensor_boundaries;
    Alcotest.test_case "kernel shape checks" `Quick test_kernel_shape_checks;
    Alcotest.test_case "vocab" `Quick test_vocab ]
