(* The test runner: one suite per subsystem. *)

let () =
  Alcotest.run "genie"
    [ ("util", Suite_util.suite);
      ("language", Suite_language.suite);
      ("canonical", Suite_canonical.suite);
      ("nn-syntax", Suite_nn_syntax.suite);
      ("runtime", Suite_runtime.suite);
      ("compile", Suite_compile.suite);
      ("thingpedia", Suite_thingpedia.suite);
      ("templates", Suite_templates.suite);
      ("synthesis", Suite_synthesis.suite);
      ("synth-parallel", Suite_synth_parallel.suite);
      ("crowd", Suite_crowd.suite);
      ("augment", Suite_augment.suite);
      ("dataset", Suite_dataset.suite);
      ("parser-model", Suite_parser_model.suite);
      ("model", Suite_model.suite);
      ("aligner-internals", Suite_aligner_internals.suite);
      ("nn", Suite_nn.suite);
      ("train-parallel", Suite_train_parallel.suite);
      ("evaldata", Suite_evaldata.suite);
      ("dsl", Suite_dsl.suite);
      ("variants", Suite_variants.suite);
      ("core", Suite_core.suite);
      ("serve", Suite_serve.suite);
      ("metrics-edge", Suite_metrics_edge.suite);
      ("observe", Suite_observe.suite);
      ("net", Suite_net.suite);
      ("checkpoint", Suite_checkpoint.suite);
      ("stream", Suite_stream.suite) ]
