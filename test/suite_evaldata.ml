(* Tests for the realistic evaluation-set generators (section 5.1) including
   the IFTTT cleanup rules of Table 2. *)

open Genie_thingtalk

let lib = Genie_thingpedia.Thingpedia.core_library ()
let prims = Genie_thingpedia.Thingpedia.core_templates ()
let rules = Genie_templates.Rules_thingtalk.rules lib

let test_developer_set () =
  let d = Genie_evaldata.Generators.developer lib ~prims ~rules ~seed:3 ~n:40 in
  Alcotest.(check bool) "non-empty" true (List.length d > 20);
  List.iter
    (fun (e : Genie_dataset.Example.t) ->
      Alcotest.(check bool) "annotated with a well-typed program" true
        (Typecheck.well_typed lib e.Genie_dataset.Example.program);
      Alcotest.(check bool) "has a sentence" true (e.Genie_dataset.Example.tokens <> []))
    d

let test_cheatsheet_fresh_fraction () =
  (* with avoid = everything seen, the generator still meets its fresh quota
     from genuinely new programs *)
  let seen = Hashtbl.create 64 in
  let d1 =
    Genie_evaldata.Generators.cheatsheet lib ~prims ~rules ~seed:4 ~n:60
      ~avoid:(fun _ -> false) ()
  in
  List.iter
    (fun (e : Genie_dataset.Example.t) ->
      Hashtbl.replace seen (Canonical.canonical_string lib e.Genie_dataset.Example.program) ())
    d1;
  Alcotest.(check bool) "set generated" true (List.length d1 > 30)

let test_cheatsheet_vocabulary_shift () =
  (* cheatsheet phrasing uses recall vocabulary absent from the templates *)
  let d =
    Genie_evaldata.Generators.cheatsheet lib ~prims ~rules ~seed:5 ~n:120 ()
  in
  let words = List.concat_map (fun (e : Genie_dataset.Example.t) -> e.Genie_dataset.Example.tokens) d in
  Alcotest.(check bool) "colloquial vocabulary present" true
    (List.exists (fun w -> List.mem w [ "ping"; "gimme"; "pix"; "whats"; "buzz" ]) words)

let test_cheatsheet_idioms () =
  (* non-compositional idioms appear for the targeted function combinations *)
  let rng = Genie_util.Rng.create 6 in
  let program =
    Parser.parse_program
      "monitor ((@com.twitter.timeline()) filter author == \"pldi\"^^tt:username) => \
       @com.twitter.retweet(tweet_id = tweet_id);"
  in
  let toks =
    Genie_evaldata.Generators.recall_rewrite rng
      (Genie_util.Tok.tokenize "when pldi tweets , retweet it")
      program
  in
  Alcotest.(check bool) "idiomatic retweet phrasing" true (List.mem "retweet" toks)

let test_ifttt_set () =
  let d = Genie_evaldata.Generators.ifttt lib ~prims ~seed:7 ~n:50 in
  Alcotest.(check bool) "non-empty" true (List.length d > 30);
  List.iter
    (fun (e : Genie_dataset.Example.t) ->
      let p = e.Genie_dataset.Example.program in
      Alcotest.(check bool) "well-typed" true (Typecheck.well_typed lib p);
      (* IFTTT applets are when-do compounds *)
      Alcotest.(check bool) "trigger-action shape" true
        (match p.Ast.stream with Ast.S_monitor _ | Ast.S_edge _ -> true | _ -> false))
    d

let test_cleanup_second_person () =
  Alcotest.(check (list string)) "your -> my" [ "blink"; "my"; "light" ]
    (Genie_evaldata.Generators.cleanup_second_person [ "blink"; "your"; "light" ])

let test_cleanup_ui_explanation () =
  Alcotest.(check (list string)) "button phrase removed" [ "color"; "loop" ]
    (Genie_evaldata.Generators.cleanup_ui_explanation
       [ "color"; "loop"; "with"; "this"; "button" ])

let test_cleanup_placeholders () =
  let rng = Genie_util.Rng.create 8 in
  let program = Parser.parse_program "now => @com.nest.thermostat.set_target_temperature(value = 25C);" in
  let out =
    Genie_evaldata.Generators.cleanup_placeholders rng program
      [ "set"; "the"; "temperature"; "to"; "___" ]
  in
  Alcotest.(check bool) "placeholder replaced" true (not (List.mem "___" out))

let test_cleanup_append_device () =
  let program =
    Parser.parse_program
      "monitor (@org.thingpedia.weather.current(location = location:home)) => \
       @com.slack.send(channel = \"team\"^^tt:slack_channel, message = \"rain\");"
  in
  let out =
    Genie_evaldata.Generators.cleanup_append_device lib program
      [ "let"; "the"; "team"; "know"; "when"; "it"; "rains" ]
  in
  (* the paper's example: "Let the team know when it rains" gains "on Slack" *)
  Alcotest.(check bool) "device appended" true
    (Genie_util.Tok.ends_with ~suffix:"slack" (String.concat " " out));
  (* but not when the device is already mentioned *)
  let out2 =
    Genie_evaldata.Generators.cleanup_append_device lib program
      [ "tell"; "slack"; "when"; "it"; "rains" ]
  in
  Alcotest.(check (list string)) "unchanged when mentioned"
    [ "tell"; "slack"; "when"; "it"; "rains" ] out2

let test_sets_deterministic () =
  let a = Genie_evaldata.Generators.ifttt lib ~prims ~seed:9 ~n:20 in
  let b = Genie_evaldata.Generators.ifttt lib ~prims ~seed:9 ~n:20 in
  Alcotest.(check bool) "deterministic" true
    (List.map Genie_dataset.Example.sentence a = List.map Genie_dataset.Example.sentence b)

let suite =
  [ Alcotest.test_case "developer set" `Quick test_developer_set;
    Alcotest.test_case "cheatsheet generated" `Quick test_cheatsheet_fresh_fraction;
    Alcotest.test_case "cheatsheet vocabulary shift" `Quick test_cheatsheet_vocabulary_shift;
    Alcotest.test_case "cheatsheet idioms" `Quick test_cheatsheet_idioms;
    Alcotest.test_case "ifttt set" `Quick test_ifttt_set;
    Alcotest.test_case "cleanup: second person" `Quick test_cleanup_second_person;
    Alcotest.test_case "cleanup: ui explanation" `Quick test_cleanup_ui_explanation;
    Alcotest.test_case "cleanup: placeholders" `Quick test_cleanup_placeholders;
    Alcotest.test_case "cleanup: append device" `Quick test_cleanup_append_device;
    Alcotest.test_case "generators deterministic" `Quick test_sets_deterministic ]
