(* Tests for the NL-template text DSL: parsing the paper-style notation and
   equivalence with the combinator-built rule set. *)

open Genie_templates

let lib = Genie_thingpedia.Thingpedia.core_library ()

let registry = Dsl.standard_registry lib

let test_parse_basic () =
  let rules = Dsl.parse ~registry "command := 'get' np -> get_np" in
  match rules with
  | [ r ] ->
      Alcotest.(check string) "lhs" "command" r.Grammar.lhs;
      (match r.Grammar.rhs with
      | [ Grammar.L "get"; Grammar.N "np" ] -> ()
      | _ -> Alcotest.fail "wrong rhs");
      Alcotest.(check bool) "flag both" true (r.Grammar.flag = Grammar.Both)
  | _ -> Alcotest.fail "expected one rule"

let test_parse_multiword_literal () =
  let rules = Dsl.parse ~registry "command := 'let me know' wp -> when_notify" in
  match rules with
  | [ { Grammar.rhs = [ Grammar.L "let me know"; Grammar.N "wp" ]; _ } ] -> ()
  | _ -> Alcotest.fail "multi-word literal mishandled"

let test_parse_flags () =
  let rules = Dsl.parse ~registry "command := np -> get_np [training]" in
  match rules with
  | [ r ] -> Alcotest.(check bool) "training flag" true (r.Grammar.flag = Grammar.Training_only)
  | _ -> Alcotest.fail "expected one rule"

let test_comments_and_blanks () =
  let rules =
    Dsl.parse ~registry "# a comment\n\ncommand := 'get' np -> get_np\n"
  in
  Alcotest.(check int) "one rule" 1 (List.length rules)

let test_errors () =
  let fails src =
    match Dsl.parse ~registry src with
    | exception Dsl.Parse_error _ -> ()
    | _ -> Alcotest.fail ("expected parse error: " ^ src)
  in
  fails "command := 'get' np -> no_such_sem";
  fails "command 'get' np -> get_np";
  fails "command := 'unterminated np -> get_np"

let test_standard_grammar_equivalent () =
  (* the DSL-written ThingTalk grammar matches the combinator rule set shape
     for shape *)
  let dsl_rules = Dsl.thingtalk_rules lib in
  let code_rules = Rules_thingtalk.rules lib in
  Alcotest.(check int) "same rule count" (List.length code_rules) (List.length dsl_rules);
  List.iter2
    (fun (a : Grammar.rule) (b : Grammar.rule) ->
      Alcotest.(check string) "lhs" a.Grammar.lhs b.Grammar.lhs;
      Alcotest.(check bool)
        (Printf.sprintf "rhs of %s" a.Grammar.name)
        true
        (a.Grammar.rhs = b.Grammar.rhs))
    code_rules dsl_rules

let test_dsl_grammar_synthesizes () =
  (* synthesis through the DSL-parsed grammar produces the same data as the
     combinator grammar under the same seed *)
  let prims = Genie_thingpedia.Thingpedia.core_templates () in
  let synth rules seed =
    let g = Grammar.create lib ~prims ~rules ~rng:(Genie_util.Rng.create seed) () in
    Genie_synthesis.Engine.synthesize g
      { Genie_synthesis.Engine.default_config with
        seed;
        target_per_rule = 40;
        max_depth = 3 }
  in
  let a = synth (Dsl.thingtalk_rules lib) 5 in
  let b = synth (Rules_thingtalk.rules lib) 5 in
  Alcotest.(check int) "same synthesis size" (List.length b) (List.length a);
  Alcotest.(check bool) "non-trivial" true (List.length a > 200)

(* --- surface-syntax round trip: parse (pretty_print p) = p ----------------------- *)

(* The printer claims Parser.parse_program accepts everything it prints.
   Exercise that claim over every Thingpedia function (minimal and
   fully-parameterized invocations) and over a seeded generator of random
   well-typed programs covering streams, filters, parameter passing and
   aggregation. *)

module Ast = Genie_thingtalk.Ast
module Value = Genie_thingtalk.Value
module Ttype = Genie_thingtalk.Ttype
module Schema = Genie_thingtalk.Schema
module Typecheck = Genie_thingtalk.Typecheck
module Printer = Genie_thingtalk.Printer
module Parser = Genie_thingtalk.Parser
module Canonical = Genie_thingtalk.Canonical
module Rng = Genie_util.Rng

let full_lib = lazy (Genie_thingpedia.Thingpedia.full_library ())

(* a concrete constant of each ThingTalk type, in printable surface form *)
let rec value_for (ty : Ttype.t) : Value.t =
  match ty with
  | Ttype.String -> Value.String "hello world"
  | Ttype.Number -> Value.Number 4.0
  | Ttype.Boolean -> Value.Boolean true
  | Ttype.Date -> Value.Date Value.D_now
  | Ttype.Time -> Value.Time (8, 30)
  | Ttype.Location -> Value.Location (Value.L_relative "home")
  | Ttype.Path_name -> Value.String "notes/todo.txt"
  | Ttype.Url -> Value.String "http://example.com/a"
  | Ttype.Phone_number -> Value.String "+15551234567"
  | Ttype.Email_address -> Value.String "bob@example.com"
  | Ttype.Picture -> Value.String "http://example.com/cat.jpg"
  | Ttype.Currency -> Value.Currency (10.0, "usd")
  | Ttype.Measure base -> (
      match Ttype.Units.units_for_base base with
      | u :: _ -> Value.Measure [ (2.0, u) ]
      | [] -> Value.Measure [ (2.0, base) ])
  | Ttype.Enum (c :: _) -> Value.Enum c
  | Ttype.Enum [] -> Value.Undefined
  | Ttype.Entity ty -> Value.Entity { ty; value = "x123"; display = None }
  | Ttype.Array t -> Value.Array [ value_for t; value_for t ]

let inv_of ?(fill_optional = false) f =
  { Ast.fn = Schema.fn_ref f;
    Ast.in_params =
      List.filter_map
        (fun (p : Schema.param) ->
          let fill =
            match p.Schema.p_dir with
            | Schema.Out -> false
            | Schema.In_req -> true
            | Schema.In_opt -> fill_optional
          in
          if fill then
            Some
              { Ast.ip_name = p.Schema.p_name;
                Ast.ip_value = Ast.Constant (value_for p.Schema.p_type) }
          else None)
        (Schema.in_params f) }

let check_roundtrip label p =
  let lib = Lazy.force full_lib in
  (match Typecheck.check_program lib p with
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "%s: generated program ill-typed (%s): %s" label e
        (Printer.program_to_string p));
  let canonical = Canonical.normalize lib p in
  List.iter
    (fun q ->
      let s = Printer.program_to_string q in
      match Parser.parse_program s with
      | q' ->
          if not (Ast.equal_program q q') then
            Alcotest.failf "%s: parse (print p) <> p\n  printed: %s\n  reparsed: %s"
              label s (Printer.program_to_string q')
      | exception e ->
          Alcotest.failf "%s: printed program rejected by the parser (%s)\n  %s"
            label (Printexc.to_string e) s)
    [ p; canonical ]

let minimal_program f =
  if Schema.is_query f then
    { Ast.stream = Ast.S_now;
      query = Some (Ast.Q_invoke (inv_of f));
      action = Ast.A_notify }
  else
    { Ast.stream = Ast.S_now; query = None; action = Ast.A_invoke (inv_of f) }

let test_roundtrip_every_function () =
  let lib = Lazy.force full_lib in
  let fns = Schema.Library.functions lib in
  Alcotest.(check bool) "library is non-trivial" true (List.length fns > 20);
  List.iter
    (fun f ->
      let name = Ast.Fn.to_string (Schema.fn_ref f) in
      check_roundtrip (name ^ " (required params)") (minimal_program f);
      (* and with every optional input filled, covering each param type *)
      let full_inv = inv_of ~fill_optional:true f in
      let p =
        if Schema.is_query f then
          { Ast.stream = Ast.S_now;
            query = Some (Ast.Q_invoke full_inv);
            action = Ast.A_notify }
        else
          { Ast.stream = Ast.S_now; query = None; action = Ast.A_invoke full_inv }
      in
      check_roundtrip (name ^ " (all params)") p)
    fns

(* seeded generator of random well-typed programs *)
let gen_program rng =
  let lib = Lazy.force full_lib in
  let queries = Array.of_list (Schema.Library.queries lib) in
  let actions = Array.of_list (Schema.Library.actions lib) in
  let monitorable =
    Array.of_list (List.filter Schema.is_monitorable (Schema.Library.queries lib))
  in
  let gen_inv f = inv_of ~fill_optional:(Rng.bool rng) f in
  let gen_pred f =
    match Schema.out_params f with
    | [] -> Ast.P_true
    | outs ->
        let p = Rng.pick rng outs in
        let v = value_for p.Schema.p_type in
        let op =
          match p.Schema.p_type with
          | Ttype.Number | Ttype.Currency | Ttype.Measure _ ->
              Rng.pick rng [ Ast.Op_eq; Ast.Op_gt; Ast.Op_lt; Ast.Op_geq ]
          | Ttype.String ->
              Rng.pick rng [ Ast.Op_eq; Ast.Op_substr; Ast.Op_starts_with ]
          | _ -> Rng.pick rng [ Ast.Op_eq; Ast.Op_neq ]
        in
        Ast.P_atom { lhs = p.Schema.p_name; op; rhs = v }
  in
  let gen_query () =
    let f = Rng.pick_array rng queries in
    let q = Ast.Q_invoke (gen_inv f) in
    if Rng.bool rng then Ast.Q_filter (q, gen_pred f) else q
  in
  let gen_stream () =
    match Rng.int rng 4 with
    | 0 -> Ast.S_now
    | 1 -> Ast.S_attimer (Value.Time (Rng.int rng 24, Rng.int rng 60))
    | 2 ->
        Ast.S_timer
          { base = Value.Date Value.D_now;
            interval = Value.Measure [ (float_of_int (1 + Rng.int rng 12), "h") ] }
    | _ ->
        let f = Rng.pick_array rng monitorable in
        let q = Ast.Q_invoke (gen_inv f) in
        let q = if Rng.bool rng then Ast.Q_filter (q, gen_pred f) else q in
        Ast.S_monitor (q, None)
  in
  let stream = gen_stream () in
  let query = if Rng.bool rng then Some (gen_query ()) else None in
  (* pass an upstream output into the action when types line up, otherwise
     fill the action from constants (or just notify) *)
  let upstream_outs =
    (match stream with
    | Ast.S_monitor (q, _) -> Ast.query_invocations q
    | _ -> [])
    @ (match query with Some q -> Ast.query_invocations q | None -> [])
  in
  let outs =
    List.concat_map
      (fun (inv : Ast.invocation) ->
        match Schema.Library.find_fn lib inv.Ast.fn with
        | Some f -> Schema.out_params f
        | None -> [])
      upstream_outs
  in
  let action =
    if Rng.bool rng then Ast.A_notify
    else begin
      let f = Rng.pick_array rng actions in
      let inv = gen_inv f in
      let inv =
        { inv with
          Ast.in_params =
            List.map
              (fun (ip : Ast.in_param) ->
                let param = Schema.find_param f ip.Ast.ip_name in
                let passable =
                  match param with
                  | None -> None
                  | Some p ->
                      List.find_opt
                        (fun (o : Schema.param) ->
                          Ttype.strictly_assignable ~src:o.Schema.p_type
                            ~dst:p.Schema.p_type)
                        outs
                in
                match passable with
                | Some o when Rng.bool rng ->
                    { ip with Ast.ip_value = Ast.Passed o.Schema.p_name }
                | _ -> ip)
              inv.Ast.in_params }
      in
      Ast.A_invoke inv
    end
  in
  { Ast.stream; query; action }

let test_roundtrip_random_programs () =
  let count = 200 in
  let shapes = Hashtbl.create 8 in
  for seed = 1 to count do
    let rng = Rng.create seed in
    let p = gen_program rng in
    Hashtbl.replace shapes
      ( p.Ast.query <> None,
        Ast.is_primitive p,
        Ast.has_filter p,
        Ast.has_param_passing p )
      ();
    check_roundtrip (Printf.sprintf "random seed %d" seed) p
  done;
  (* the generator actually explores the program space *)
  Alcotest.(check bool) "several program shapes covered" true
    (Hashtbl.length shapes >= 6)

let test_roundtrip_generator_deterministic () =
  let progs seed =
    List.init 20 (fun i ->
        Printer.program_to_string (gen_program (Rng.create (seed + i))))
  in
  Alcotest.(check (list string)) "seeded generator is reproducible" (progs 1)
    (progs 1)

let suite =
  [ Alcotest.test_case "parse basic rule" `Quick test_parse_basic;
    Alcotest.test_case "multi-word literals" `Quick test_parse_multiword_literal;
    Alcotest.test_case "purpose flags" `Quick test_parse_flags;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "parse errors" `Quick test_errors;
    Alcotest.test_case "standard grammar equivalence" `Quick
      test_standard_grammar_equivalent;
    Alcotest.test_case "dsl grammar synthesizes identically" `Quick
      test_dsl_grammar_synthesizes;
    Alcotest.test_case "round trip: every thingpedia function" `Quick
      test_roundtrip_every_function;
    Alcotest.test_case "round trip: random well-typed programs" `Quick
      test_roundtrip_random_programs;
    Alcotest.test_case "round trip generator deterministic" `Quick
      test_roundtrip_generator_deterministic ]
