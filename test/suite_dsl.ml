(* Tests for the NL-template text DSL: parsing the paper-style notation and
   equivalence with the combinator-built rule set. *)

open Genie_templates

let lib = Genie_thingpedia.Thingpedia.core_library ()

let registry = Dsl.standard_registry lib

let test_parse_basic () =
  let rules = Dsl.parse ~registry "command := 'get' np -> get_np" in
  match rules with
  | [ r ] ->
      Alcotest.(check string) "lhs" "command" r.Grammar.lhs;
      (match r.Grammar.rhs with
      | [ Grammar.L "get"; Grammar.N "np" ] -> ()
      | _ -> Alcotest.fail "wrong rhs");
      Alcotest.(check bool) "flag both" true (r.Grammar.flag = Grammar.Both)
  | _ -> Alcotest.fail "expected one rule"

let test_parse_multiword_literal () =
  let rules = Dsl.parse ~registry "command := 'let me know' wp -> when_notify" in
  match rules with
  | [ { Grammar.rhs = [ Grammar.L "let me know"; Grammar.N "wp" ]; _ } ] -> ()
  | _ -> Alcotest.fail "multi-word literal mishandled"

let test_parse_flags () =
  let rules = Dsl.parse ~registry "command := np -> get_np [training]" in
  match rules with
  | [ r ] -> Alcotest.(check bool) "training flag" true (r.Grammar.flag = Grammar.Training_only)
  | _ -> Alcotest.fail "expected one rule"

let test_comments_and_blanks () =
  let rules =
    Dsl.parse ~registry "# a comment\n\ncommand := 'get' np -> get_np\n"
  in
  Alcotest.(check int) "one rule" 1 (List.length rules)

let test_errors () =
  let fails src =
    match Dsl.parse ~registry src with
    | exception Dsl.Parse_error _ -> ()
    | _ -> Alcotest.fail ("expected parse error: " ^ src)
  in
  fails "command := 'get' np -> no_such_sem";
  fails "command 'get' np -> get_np";
  fails "command := 'unterminated np -> get_np"

let test_standard_grammar_equivalent () =
  (* the DSL-written ThingTalk grammar matches the combinator rule set shape
     for shape *)
  let dsl_rules = Dsl.thingtalk_rules lib in
  let code_rules = Rules_thingtalk.rules lib in
  Alcotest.(check int) "same rule count" (List.length code_rules) (List.length dsl_rules);
  List.iter2
    (fun (a : Grammar.rule) (b : Grammar.rule) ->
      Alcotest.(check string) "lhs" a.Grammar.lhs b.Grammar.lhs;
      Alcotest.(check bool)
        (Printf.sprintf "rhs of %s" a.Grammar.name)
        true
        (a.Grammar.rhs = b.Grammar.rhs))
    code_rules dsl_rules

let test_dsl_grammar_synthesizes () =
  (* synthesis through the DSL-parsed grammar produces the same data as the
     combinator grammar under the same seed *)
  let prims = Genie_thingpedia.Thingpedia.core_templates () in
  let synth rules seed =
    let g = Grammar.create lib ~prims ~rules ~rng:(Genie_util.Rng.create seed) () in
    Genie_synthesis.Engine.synthesize g
      { Genie_synthesis.Engine.default_config with
        seed;
        target_per_rule = 40;
        max_depth = 3 }
  in
  let a = synth (Dsl.thingtalk_rules lib) 5 in
  let b = synth (Rules_thingtalk.rules lib) 5 in
  Alcotest.(check int) "same synthesis size" (List.length b) (List.length a);
  Alcotest.(check bool) "non-trivial" true (List.length a > 200)

let suite =
  [ Alcotest.test_case "parse basic rule" `Quick test_parse_basic;
    Alcotest.test_case "multi-word literals" `Quick test_parse_multiword_literal;
    Alcotest.test_case "purpose flags" `Quick test_parse_flags;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "parse errors" `Quick test_errors;
    Alcotest.test_case "standard grammar equivalence" `Quick
      test_standard_grammar_equivalent;
    Alcotest.test_case "dsl grammar synthesizes identically" `Quick
      test_dsl_grammar_synthesizes ]
