(* The Spotify music assistant of paper section 6.1.

   The skill has 15 queries and 17 actions, and exercises quote-free
   parameters whose value identity selects the function: "play shake it off"
   must become play_song while "play taylor swift" becomes play_artist. The
   Genie pipeline learns this from parameter expansion over the song/artist
   gazettes.

   Run with: dune exec examples/music_assistant.exe *)

open Genie_thingtalk

let () =
  let lib = Genie_thingpedia.Thingpedia.full_library () in
  let prims = Genie_thingpedia.Thingpedia.spotify_templates () in
  let rules = Genie_templates.Rules_thingtalk.rules lib in
  Printf.printf "Spotify skill: %d primitive templates over %d functions\n%!"
    (List.length prims)
    (List.length
       (match Schema.Library.find_class lib "com.spotify" with
       | Some c -> c.Schema.c_functions
       | None -> []));

  print_endline "training the music parser...";
  let cfg = Genie_core.Config.(scaled 0.6 default) in
  let artifacts = Genie_core.Pipeline.run ~cfg ~lib ~prims ~rules () in

  (* the value, not the verb, distinguishes these functions: both commands
     say just "play X" *)
  let commands =
    [ "play shake it off";
      "play taylor swift";
      "play the album abbey road";
      "add bohemian rhapsody to my library";
      "songs faster than 120 bpm";
      "when i save a song , add it to the playlist workout";
      "wake me up at 8:00 by playing wake me up inside" ]
  in
  List.iter
    (fun sentence ->
      let toks = Genie_util.Tok.tokenize sentence in
      match Genie_core.Pipeline.predictor artifacts toks with
      | None -> Printf.printf "%s\n  -> <no parse>\n" sentence
      | Some p ->
          Printf.printf "%s\n  -> %s\n" sentence (Printer.program_to_string p);
          let env = Genie_runtime.Exec.create lib in
          (match Genie_runtime.Exec.run env p with
          | _, (fn, _) :: _ ->
              Printf.printf "     (runtime invoked %s)\n" (Ast.Fn.to_string fn)
          | _ -> ()))
    commands
