(* Smart-home automation: the IoT workload that motivates trigger-action
   programming (paper section 1). Automations are written in English,
   translated by a Genie-trained parser, and run for a simulated month on the
   mock home: thermostat, door sensor, security camera, lights.

   Demonstrates monitors, edge filters ("when the temperature drops below
   60F"), filtered monitors and timers.

   Run with: dune exec examples/smart_home.exe *)

open Genie_thingtalk

let simulate lib name program =
  let env = Genie_runtime.Exec.create ~seed:2024 lib in
  let notifications, effects = Genie_runtime.Exec.run ~ticks:30 env program in
  Printf.printf "%-55s -> %d notifications, %d actions over 30 days\n" name
    (List.length notifications) (List.length effects);
  List.iteri
    (fun i (fn, args) ->
      if i < 2 then
        Printf.printf "     e.g. %s(%s)\n" (Ast.Fn.to_string fn)
          (String.concat ", " (List.map (fun (n, v) -> n ^ " = " ^ Value.to_string v) args)))
    effects

let () =
  let lib = Genie_thingpedia.Thingpedia.core_library () in
  print_endline "=== Hand-written automations (ThingTalk) ===";
  let automations =
    [ ( "heat the house when it gets cold",
        "edge (monitor (@com.nest.thermostat.get_temperature())) on value < 60F => \
         @com.nest.thermostat.set_target_temperature(value = 21C);" );
      ( "alert when the door opens",
        "monitor ((@io.home-assistant.door.state()) filter state == enum:open) => notify;" );
      ( "light up when the camera sees a person",
        "monitor ((@com.nest.security_camera.current_event()) filter has_person == true) => \
         @io.home-assistant.light.set_power(power = enum:on);" );
      ( "daily morning report",
        "attimer time = time(8,0) => @org.thingpedia.weather.current(location = \
         location(\"palo alto\")) => notify;" ) ]
  in
  List.iter
    (fun (name, src) ->
      let p = Parser.parse_program src in
      (match Typecheck.check_program lib p with
      | Ok () -> ()
      | Error e -> failwith (name ^ ": " ^ e));
      simulate lib name p)
    automations;

  print_endline "\n=== The same automations, spoken in English ===";
  let prims = Genie_thingpedia.Thingpedia.core_templates () in
  let rules = Genie_templates.Rules_thingtalk.rules lib in
  let cfg = Genie_core.Config.(scaled 0.8 default) in
  let artifacts = Genie_core.Pipeline.run ~cfg ~lib ~prims ~rules () in
  let spoken =
    [ "when the door opens , notify me";
      "when my security camera sees a person , turn on the lights";
      "when the temperature drops below 60 F in the temperature in my home , notify me";
      "every day at 8:00 , get the weather in palo alto" ]
  in
  List.iter
    (fun sentence ->
      let toks = Genie_util.Tok.tokenize sentence in
      match Genie_core.Pipeline.predictor artifacts toks with
      | None -> Printf.printf "%s\n  -> <no parse>\n" sentence
      | Some p ->
          Printf.printf "%s\n  -> %s\n" sentence (Printer.program_to_string p);
          if Typecheck.well_typed lib p then simulate lib "   (simulated)" p)
    spoken
