(* Access control with TACL (paper section 6.2): policies describe who may
   run which commands on your data. Policies are written in English, parsed
   through the TACL grammar, and then enforced against incoming requests.

   Run with: dune exec examples/access_control.exe *)

open Genie_thingtalk

(* Does a policy allow [who] to run the primitive program [request]? *)
let allows (policies : Ast.policy list) ~(who : string) (request : Ast.program) : bool =
  let source_matches pred =
    let record = [ ("source", Value.Entity { ty = "tt:contact"; value = who; display = None }) ] in
    (* reuse the runtime predicate evaluator *)
    let lib = Genie_thingpedia.Thingpedia.core_library () in
    let env = Genie_runtime.Exec.create lib in
    Genie_runtime.Exec.eval_predicate env record pred
  in
  let request_fn =
    match Ast.program_functions request with [ f ] -> Some f | _ -> None
  in
  List.exists
    (fun (pol : Ast.policy) ->
      source_matches pol.Ast.source
      &&
      match (pol.Ast.target, request_fn) with
      | Ast.Policy_query (inv, _), Some f -> Ast.Fn.equal inv.Ast.fn f
      | Ast.Policy_action (inv, _), Some f -> Ast.Fn.equal inv.Ast.fn f
      | _ -> false)
    policies

let () =
  print_endline "=== Policies in TACL concrete syntax ===";
  let policy_srcs =
    [ "source source == \"my secretary\"^^tt:contact : now => (@com.gmail.inbox()) filter \
       labels contains \"work\" => notify;";
      "source source == \"alice\"^^tt:contact : now => @io.home-assistant.light.set_power(power = enum:on);";
      "source true : now => @org.thingpedia.weather.current(location = location(\"palo alto\")) => notify;" ]
  in
  let policies = List.map Parser.parse_policy policy_srcs in
  let lib =
    Schema.Library.of_classes
      (Genie_thingpedia.Thingpedia.core_classes @ [ Genie_templates.Rules_tacl.policy_class ])
  in
  List.iter
    (fun pol ->
      (match Typecheck.check_policy lib pol with
      | Ok () -> ()
      | Error e -> failwith e);
      Printf.printf "policy: %s\n" (Printer.policy_to_string pol))
    policies;

  print_endline "\n=== Enforcement ===";
  let requests =
    [ ("my secretary", "now => @com.gmail.inbox() => notify;");
      ("my secretary", "now => @com.twitter.timeline() => notify;");
      ("alice", "now => @io.home-assistant.light.set_power(power = enum:on);");
      ("bob", "now => @io.home-assistant.light.set_power(power = enum:on);");
      ("bob", "now => @org.thingpedia.weather.current(location = location(\"palo alto\")) => notify;") ]
  in
  List.iter
    (fun (who, src) ->
      let request = Parser.parse_program src in
      Printf.printf "%-14s %-60s %s\n" who src
        (if allows policies ~who request then "ALLOWED" else "DENIED"))
    requests;

  print_endline "\n=== Policies synthesized from the TACL templates ===";
  let prims = Genie_thingpedia.Thingpedia.core_templates () in
  let rules = Genie_templates.Rules_tacl.rules lib in
  let extra_terminals =
    [ ("person", Genie_templates.Rules_tacl.person_terminals (Genie_util.Rng.create 5) ~samples:1) ]
  in
  let g =
    Genie_templates.Grammar.create lib ~prims ~rules ~rng:(Genie_util.Rng.create 5)
      ~start:"policy" ~extra_terminals ()
  in
  let sampled =
    Genie_synthesis.Engine.synthesize_policies g
      { Genie_synthesis.Engine.default_config with target_per_rule = 30; max_depth = 2 }
  in
  List.iteri
    (fun i (toks, pol) ->
      if i < 8 then
        Printf.printf "%s\n  %s\n" (String.concat " " toks) (Printer.policy_to_string pol))
    sampled;
  Printf.printf "(%d policies synthesized in total)\n" (List.length sampled)
