(* Quickstart: the Genie workflow end to end.

   1. Load the Thingpedia skill library and write/parse ThingTalk directly.
   2. Execute programs on the mock runtime.
   3. Synthesize training data from the NL templates, run the Genie pipeline
      (paraphrase simulation, augmentation) and train a semantic parser.
   4. Translate English commands into ThingTalk and run them.

   Run with: dune exec examples/quickstart.exe *)

open Genie_thingtalk

let () =
  print_endline "=== 1. The ThingTalk language ===";
  let lib = Genie_thingpedia.Thingpedia.core_library () in
  Printf.printf "library: %s\n" (Genie_thingpedia.Thingpedia.stats lib);
  (* the retweet example of section 2.3 *)
  let retweet =
    Parser.parse_program
      "monitor ((@com.twitter.timeline()) filter author == \"pldi\"^^tt:username) => \
       @com.twitter.retweet(tweet_id = tweet_id);"
  in
  (match Typecheck.check_program lib retweet with
  | Ok () -> print_endline "type checks: ok"
  | Error e -> Printf.printf "type error: %s\n" e);
  Printf.printf "canonical form: %s\n" (Printer.program_to_string (Canonical.normalize lib retweet));
  Printf.printf "NN tokens     : %s\n\n" (Nn_syntax.to_string lib (Canonical.normalize lib retweet));

  print_endline "=== 2. Executing on the mock runtime ===";
  let fig1 =
    Parser.parse_program
      "now => @com.thecatapi.get() => @com.facebook.post_picture(picture_url = picture_url, \
       caption = \"funny cat\");"
  in
  let env = Genie_runtime.Exec.create lib in
  let _, effects = Genie_runtime.Exec.run env fig1 in
  List.iter
    (fun (fn, args) ->
      Printf.printf "executed %s(%s)\n" (Ast.Fn.to_string fn)
        (String.concat ", " (List.map (fun (n, v) -> n ^ " = " ^ Value.to_string v) args)))
    effects;
  print_newline ();

  print_endline "=== 3. Synthesizing data and training a parser ===";
  let prims = Genie_thingpedia.Thingpedia.core_templates () in
  let rules = Genie_templates.Rules_thingtalk.rules lib in
  let cfg = Genie_core.Config.default in
  let artifacts = Genie_core.Pipeline.run ~cfg ~lib ~prims ~rules () in
  Printf.printf "synthesized %d sentences, %d validated paraphrases, %d training examples\n\n"
    (List.length artifacts.Genie_core.Pipeline.synthesized)
    (List.length artifacts.Genie_core.Pipeline.paraphrases)
    (List.length artifacts.Genie_core.Pipeline.train);

  print_endline "=== 4. Translating English into ThingTalk ===";
  let commands =
    [ "get a cat picture and post it on facebook with caption funny cat";
      "notify me when i receive an email from alice";
      "when it rains in palo alto , turn off the lights";
      "tweet hello world" ]
  in
  List.iter
    (fun sentence ->
      let toks = Genie_util.Tok.tokenize sentence in
      match Genie_core.Pipeline.predictor artifacts toks with
      | None -> Printf.printf "%-60s -> <no parse>\n" sentence
      | Some p -> Printf.printf "%s\n  -> %s\n" sentence (Printer.program_to_string p))
    commands
